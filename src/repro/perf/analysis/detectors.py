"""Performance anti-pattern detectors (paper §3, §4.3.2).

Implements the paper's detection equations with its default weights:

* **Equation 1** (moving/duplication — SISC/SDSC/SNC solutions):
  ``C1/CΣ ≥ α ∨ C5/CΣ ≥ β ∨ C10/CΣ ≥ γ`` with α=0.35, β=0.50, γ=0.65,
  over *execution* times (transition subtracted for ecalls).
* **Equation 2** (reordering — SNC solution):
  ``(Cs10/CΣ)·α + (Cs20/CΣ)·β ≥ γ`` with α=1.00, β=0.75, γ=0.50 for calls
  clustered at the start of their direct parent, symmetrically at the end.
* **Equation 3** (merging/batching — SISC/SDSC solutions):
  ``PΣ/CΣ ≥ λ ∧ (P1/PΣ)·α + (P5/PΣ)·β + (P10/PΣ)·γ + (P20/PΣ)·δ ≥ ε``
  with α=1.00, β=0.75, γ=0.50, δ=ε=λ=0.35 over gaps to indirect parents;
  batching is the special case of a call being its own indirect parent.
* **SSC** (short synchronisation calls, §3.4): frequent sync ocalls whose
  sleeps are short → hybrid spin-then-sleep locks / lock-free structures.
* **Paging** (§3.5): any EPC traffic during the trace, correlated with the
  ecalls it interrupted.

All detectors consume :class:`~repro.perf.columns.CallColumns` internally
(legacy ``Sequence[CallEvent]`` inputs are coerced), grouping and
thresholding on NumPy arrays instead of per-event objects.

Every detector reduces its evidence to **plain threshold counts** before
deciding anything: the counts go through the shared ``*_finding_from_counts``
builders, which hold the decision equations and message formats.  The
streaming analyser (:mod:`repro.perf.analysis.streaming`) accumulates the
same counts incrementally over chunks and calls the same builders, so both
paths produce byte-identical findings by construction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from repro.perf.analysis import parents as parents_mod
from repro.perf.analysis import stats as stats_mod
from repro.perf.columns import CallColumns, as_columns
from repro.perf.events import CallEvent, ECALL, OCALL, PagingRecord, SyncEvent, SyncKind

Calls = Union[CallColumns, Sequence[CallEvent]]


class Problem(enum.Enum):
    """The paper's problem taxonomy (Table 1)."""

    SISC = "short identical successive calls"
    SDSC = "short different successive calls"
    SNC = "short nested calls"
    SSC = "short synchronisation calls"
    PAGING = "paging"
    INTERFACE = "permissive enclave interface"


class Recommendation(enum.Enum):
    """Mitigations the analyser can suggest (Table 1)."""

    BATCH = "batch successive calls into one"
    MERGE = "merge the successive calls into a single call"
    MOVE_IN = "move the caller inside the enclave"
    MOVE_OUT = "move the caller outside the enclave (needs security review)"
    REORDER = "reorder the call to before/after its parent"
    DUPLICATE = "duplicate the ocall's functionality inside the enclave"
    HYBRID_SYNC = "use hybrid spin-then-sleep locks or lock-free structures"
    REDUCE_MEMORY = "reduce enclave memory usage / load data in chunks"
    PRELOAD_PAGES = "pre-load needed pages before issuing the ecall"
    ALTERNATIVE_PAGING = "use application-level paging instead of SGX paging"
    MAKE_PRIVATE = "declare the ecall private"
    NARROW_ALLOWLIST = "remove unused ecalls from the ocall's allow list"
    CHECK_POINTERS = "audit the user_check pointer handling"


# Recommendation priorities (§4.3.2): reordering does not grow the TCB, so
# it is evaluated first; moving code out needs a security evaluation last.
_PRIORITY = {
    Recommendation.REORDER: 1,
    Recommendation.BATCH: 2,
    Recommendation.MERGE: 2,
    Recommendation.MOVE_IN: 3,
    Recommendation.DUPLICATE: 3,
    Recommendation.HYBRID_SYNC: 3,
    Recommendation.MOVE_OUT: 4,
    Recommendation.REDUCE_MEMORY: 3,
    Recommendation.PRELOAD_PAGES: 3,
    Recommendation.ALTERNATIVE_PAGING: 4,
    Recommendation.MAKE_PRIVATE: 5,
    Recommendation.NARROW_ALLOWLIST: 5,
    Recommendation.CHECK_POINTERS: 5,
}


@dataclass(frozen=True)
class Finding:
    """One detected problem with its suggested mitigations."""

    problem: Problem
    kind: str  # ecall | ocall
    call: str
    recommendations: tuple[Recommendation, ...]
    message: str
    evidence: dict = field(default_factory=dict)

    @property
    def priority(self) -> int:
        """Smallest (best) priority among the recommendations."""
        return min(_PRIORITY[r] for r in self.recommendations)


@dataclass(frozen=True)
class AnalyzerWeights:
    """All tunable thresholds, defaulting to the paper's values."""

    # Equation 1 (move/duplicate)
    move_alpha: float = 0.35
    move_beta: float = 0.50
    move_gamma: float = 0.65
    # Equation 2 (reorder)
    reorder_alpha: float = 1.00
    reorder_beta: float = 0.75
    reorder_gamma: float = 0.50
    # Equation 3 (merge/batch)
    merge_alpha: float = 1.00
    merge_beta: float = 0.75
    merge_gamma: float = 0.50
    merge_delta: float = 0.35
    merge_epsilon: float = 0.35
    merge_lambda: float = 0.35
    # General
    short_call_ns: int = 10_000
    min_calls: int = 4  # ignore call sites with fewer observations
    ssc_min_events: int = 8
    ssc_short_sleep_ns: int = 50_000


def _grouped_rows(keys: np.ndarray) -> list[tuple[str, np.ndarray]]:
    """Row indices per distinct key string, in sorted-key order."""
    uniq, inverse = np.unique(keys, return_inverse=True)
    order = np.argsort(inverse, kind="stable")
    boundaries = np.flatnonzero(np.diff(inverse[order])) + 1
    return [
        (str(uniq[i]), rows) for i, rows in enumerate(np.split(order, boundaries))
    ]


# --------------------------------------------------------------------------
# Equation 1: moving / duplication opportunities
# --------------------------------------------------------------------------


def move_finding_from_counts(
    kind: str,
    name: str,
    total: int,
    n1: int,
    n5: int,
    n10: int,
    weights: AnalyzerWeights = AnalyzerWeights(),
) -> Optional[Finding]:
    """Equation 1 decision from execution-duration threshold counts.

    ``n1``/``n5``/``n10`` count executions shorter than 1/5/10 us out of
    ``total`` (transition already subtracted for ecalls).
    """
    c1 = n1 / total if total else 0.0
    c5 = n5 / total if total else 0.0
    c10 = n10 / total if total else 0.0
    if not (
        c1 >= weights.move_alpha
        or c5 >= weights.move_beta
        or c10 >= weights.move_gamma
    ):
        return None
    if kind == ECALL:
        recommendations = (Recommendation.MOVE_OUT, Recommendation.BATCH)
        hint = "mostly-short ecall: computation does not amortise the transition"
    else:
        recommendations = (Recommendation.MOVE_IN, Recommendation.DUPLICATE)
        hint = "mostly-short ocall: consider keeping the work inside the enclave"
    return Finding(
        problem=Problem.SISC,
        kind=kind,
        call=name,
        recommendations=recommendations,
        message=(
            f"{hint} ({total} calls; {c1:.0%} <1us, {c5:.0%} <5us, "
            f"{c10:.0%} <10us of execution time)"
        ),
        evidence={"count": total, "c1": c1, "c5": c5, "c10": c10},
    )


def detect_move_candidates(
    calls: Calls,
    transition_round_trip_ns: int,
    weights: AnalyzerWeights = AnalyzerWeights(),
) -> list[Finding]:
    """Flag calls whose executions are mostly shorter than a transition."""
    cols = as_columns(calls)
    durations = cols.duration_ns()
    findings: list[Finding] = []
    for (kind, name), rows in sorted(cols.group_indices(), key=lambda g: g[0]):
        if cols.is_sync[rows[0]] or len(rows) < weights.min_calls:
            continue
        exec_ns = durations[rows]
        if kind == ECALL:
            exec_ns = np.maximum(exec_ns - int(transition_round_trip_ns), 0)
        finding = move_finding_from_counts(
            kind,
            name,
            len(exec_ns),
            int((exec_ns < 1_000).sum()),
            int((exec_ns < 5_000).sum()),
            int((exec_ns < 10_000).sum()),
            weights,
        )
        if finding is not None:
            findings.append(finding)
    return findings


# --------------------------------------------------------------------------
# Equation 2: reordering opportunities
# --------------------------------------------------------------------------


def reorder_finding_from_counts(
    kind: str,
    name: str,
    parent_name: str,
    total: int,
    s10: int,
    s20: int,
    e10: int,
    e20: int,
    weights: AnalyzerWeights = AnalyzerWeights(),
) -> Optional[Finding]:
    """Equation 2 decision from offset threshold counts.

    ``s10``/``s20`` count nested calls starting within 10/20 us of the
    parent's start; ``e10``/``e20`` count them ending within 10/20 us of
    the parent's end.  The "start" position is tried first; at most one
    finding per (call, parent) pair is produced.
    """
    for label, n10, n20 in (("start", s10, s20), ("end", e10, e20)):
        c10 = n10 / total if total else 0.0
        c20 = n20 / total if total else 0.0
        score = c10 * weights.reorder_alpha + c20 * weights.reorder_beta
        if score >= weights.reorder_gamma:
            return Finding(
                problem=Problem.SNC,
                kind=kind,
                call=name,
                recommendations=(Recommendation.REORDER,),
                message=(
                    f"nested {kind} clustered at the {label} of "
                    f"{parent_name} ({total} calls, {c10:.0%} within "
                    f"10us, {c20:.0%} within 20us): execute it "
                    f"{'before' if label == 'start' else 'after'} the parent instead"
                ),
                evidence={
                    "parent": parent_name,
                    "position": label,
                    "count": total,
                    "c10": c10,
                    "c20": c20,
                    "score": score,
                },
            )
    return None


def detect_reorder_candidates(
    calls: Calls,
    weights: AnalyzerWeights = AnalyzerWeights(),
) -> list[Finding]:
    """Flag nested calls clustered at the start or end of their parent."""
    cols = as_columns(calls)
    parent_pos = cols.positions_of(cols.parent_id)
    nested = np.flatnonzero((parent_pos >= 0) & ~cols.is_sync)
    findings: list[Finding] = []
    if len(nested) == 0:
        return findings
    parents = parent_pos[nested]
    from_start_all = cols.start_ns[nested] - cols.start_ns[parents]
    from_end_all = cols.end_ns[parents] - cols.end_ns[nested]
    # "\x00" sorts below any name character, so sorted key strings match
    # sorted (kind, name, parent_name) tuples.
    keys = np.array(
        [
            k + "\x00" + n + "\x00" + p
            for k, n, p in zip(cols.kind[nested], cols.name[nested], cols.name[parents])
        ],
        dtype=object,
    )
    for key, rows in _grouped_rows(keys):
        if len(rows) < weights.min_calls:
            continue
        kind, name, parent_name = key.split("\x00")
        starts = from_start_all[rows]
        ends = from_end_all[rows]
        finding = reorder_finding_from_counts(
            kind,
            name,
            parent_name,
            len(rows),
            int((starts <= 10_000).sum()),
            int((starts <= 20_000).sum()),
            int((ends <= 10_000).sum()),
            int((ends <= 20_000).sum()),
            weights,
        )
        if finding is not None:
            findings.append(finding)
    return findings


# --------------------------------------------------------------------------
# Equation 3: merging / batching opportunities
# --------------------------------------------------------------------------


def merge_finding_from_counts(
    child_key: tuple[str, str],
    parent_key: tuple[str, str],
    pairs: int,
    n1: int,
    n5: int,
    n10: int,
    n20: int,
    child_total: int,
    parent_total: int,
    weights: AnalyzerWeights = AnalyzerWeights(),
) -> Optional[Finding]:
    """Equation 3 decision from gap threshold counts.

    ``n1``..``n20`` count successive (parent, child) pairs with a gap of
    at most 1/5/10/20 us out of ``pairs``; the P-fractions are taken over
    ``parent_total`` occurrences of the parent call, per the paper.
    """
    if pairs < weights.min_calls:
        return None
    if parent_total / child_total < weights.merge_lambda:
        return None
    p1 = float(n1) / parent_total
    p5 = float(n5) / parent_total
    p10 = float(n10) / parent_total
    p20 = float(n20) / parent_total
    score = (
        p1 * weights.merge_alpha
        + p5 * weights.merge_beta
        + p10 * weights.merge_gamma
        + p20 * weights.merge_delta
    )
    if score < weights.merge_epsilon:
        return None
    kind, name = child_key
    if child_key == parent_key:
        problem, rec = Problem.SISC, Recommendation.BATCH
        message = (
            f"{name} is repeatedly its own indirect parent with short gaps "
            f"({pairs} successive pairs, score {score:.2f}): batch the calls"
        )
    else:
        problem, rec = Problem.SDSC, Recommendation.MERGE
        message = (
            f"{name} frequently follows {parent_key[1]} within microseconds "
            f"({pairs} pairs, score {score:.2f}): merge them into one call"
        )
    return Finding(
        problem=problem,
        kind=kind,
        call=name,
        recommendations=(rec, Recommendation.MOVE_IN if kind == OCALL else Recommendation.MOVE_OUT),
        message=message,
        evidence={
            "indirect_parent": parent_key[1],
            "pairs": pairs,
            "p1": p1,
            "p5": p5,
            "p10": p10,
            "p20": p20,
            "score": score,
        },
    )


def detect_merge_batch_candidates(
    calls: Calls,
    weights: AnalyzerWeights = AnalyzerWeights(),
) -> list[Finding]:
    """Flag successive short-gap calls for batching (SISC) or merging (SDSC)."""
    cols = as_columns(calls)
    children, parents = parents_mod.indirect_parent_links(cols)
    counts_by_name = {key: len(rows) for key, rows in cols.group_indices()}
    findings: list[Finding] = []
    if len(children) == 0:
        return findings
    keep = ~cols.is_sync[children]
    children, parents = children[keep], parents[keep]
    if len(children) == 0:
        return findings
    gaps_all = cols.start_ns[children] - cols.end_ns[parents]
    keys = np.array(
        [
            ck + "\x00" + cn + "\x00" + pk + "\x00" + pn
            for ck, cn, pk, pn in zip(
                cols.kind[children],
                cols.name[children],
                cols.kind[parents],
                cols.name[parents],
            )
        ],
        dtype=object,
    )
    for key, rows in _grouped_rows(keys):
        ck, cn, pk, pn = key.split("\x00")
        child_key, parent_key = (ck, cn), (pk, pn)
        arr = gaps_all[rows]
        finding = merge_finding_from_counts(
            child_key,
            parent_key,
            len(rows),
            int((arr <= 1_000).sum()),
            int((arr <= 5_000).sum()),
            int((arr <= 10_000).sum()),
            int((arr <= 20_000).sum()),
            counts_by_name[child_key],
            counts_by_name[parent_key],
            weights,
        )
        if finding is not None:
            findings.append(finding)
    return findings


# --------------------------------------------------------------------------
# Short synchronisation calls
# --------------------------------------------------------------------------


def ssc_finding_from_counts(
    total_sync_events: int,
    sleeps: int,
    wakes: int,
    matched_sleeps: int,
    short_sleeps: int,
    wake_matrix: dict[tuple[int, int], int],
    weights: AnalyzerWeights = AnalyzerWeights(),
) -> list[Finding]:
    """SSC decision (§3.4) from sync-event and sleep-duration counts.

    ``matched_sleeps`` counts sleep events whose ``call_id`` resolved to a
    traced call (per occurrence); ``short_sleeps`` counts those resolved
    sleeps shorter than the SSC threshold.
    """
    if total_sync_events < weights.ssc_min_events:
        return []
    short_fraction = short_sleeps / matched_sleeps if matched_sleeps else 0.0
    if short_fraction < 0.5 and wakes < weights.ssc_min_events:
        return []
    return [
        Finding(
            problem=Problem.SSC,
            kind=OCALL,
            call="sdk synchronisation",
            recommendations=(Recommendation.HYBRID_SYNC,),
            message=(
                f"{sleeps} sleep and {wakes} wake ocalls observed; "
                f"{short_fraction:.0%} of sleeps shorter than "
                f"{weights.ssc_short_sleep_ns / 1000:.0f}us — locks are held "
                "briefly, so spinning in-enclave would avoid most transitions"
            ),
            evidence={
                "sleeps": sleeps,
                "wakes": wakes,
                "short_sleep_fraction": short_fraction,
                "wake_matrix": wake_matrix,
            },
        )
    ]


def detect_ssc(
    calls: Calls,
    sync_events: Sequence[SyncEvent],
    weights: AnalyzerWeights = AnalyzerWeights(),
) -> list[Finding]:
    """Flag heavy in-enclave synchronisation with short sleeps (§3.4)."""
    if len(sync_events) < weights.ssc_min_events:
        return []
    cols = as_columns(calls)
    sleeps = [e for e in sync_events if e.kind is SyncKind.SLEEP]
    wakes = [e for e in sync_events if e.kind is SyncKind.WAKE]
    sleep_pos = cols.positions_of(
        np.fromiter((e.call_id for e in sleeps), dtype=np.int64, count=len(sleeps))
    )
    sleep_pos = sleep_pos[sleep_pos >= 0]
    sleep_durations = cols.duration_ns()[sleep_pos]
    wake_matrix: dict[tuple[int, int], int] = {}
    for wake in wakes:
        for target in wake.targets:
            key = (wake.thread_id, target)
            wake_matrix[key] = wake_matrix.get(key, 0) + 1
    return ssc_finding_from_counts(
        len(sync_events),
        len(sleeps),
        len(wakes),
        len(sleep_durations),
        int((sleep_durations < weights.ssc_short_sleep_ns).sum()),
        wake_matrix,
        weights,
    )


# --------------------------------------------------------------------------
# Paging
# --------------------------------------------------------------------------


def paging_findings_from_counts(
    affected: dict[str, int],
    page_in: int,
    page_out: int,
    distinct_pages: int,
) -> list[Finding]:
    """Paging findings (§3.5) from attribution counts.

    ``affected`` maps ecall name to the number of paging events that fell
    inside its executions, in first-affected (chronological) insertion
    order — ties in the count sort preserve that order.
    """
    if not (page_in or page_out):
        return []
    return [
        Finding(
            problem=Problem.PAGING,
            kind=ECALL,
            call=name,
            recommendations=(
                Recommendation.REDUCE_MEMORY,
                Recommendation.PRELOAD_PAGES,
                Recommendation.ALTERNATIVE_PAGING,
            ),
            message=(
                f"{count} paging events during executions of {name} "
                f"(trace total: {page_in} in / {page_out} out over "
                f"{distinct_pages} distinct pages)"
            ),
            evidence={
                "events_during_call": count,
                "page_in": page_in,
                "page_out": page_out,
                "distinct_pages": distinct_pages,
            },
        )
        for name, count in sorted(affected.items(), key=lambda kv: -kv[1])
    ] or [
        Finding(
            problem=Problem.PAGING,
            kind=ECALL,
            call="(outside ecalls)",
            recommendations=(Recommendation.REDUCE_MEMORY,),
            message=(
                f"{page_in} page-ins / {page_out} page-outs observed outside "
                f"any traced ecall (e.g. enclave creation under EPC pressure)"
            ),
            evidence={"page_in": page_in, "page_out": page_out},
        )
    ]


def detect_paging(
    calls: Calls,
    paging: Sequence[PagingRecord],
) -> list[Finding]:
    """Flag EPC paging, attributing events to the ecalls they fell into."""
    if not paging:
        return []
    cols = as_columns(calls)
    page_in = sum(1 for p in paging if p.direction == "page_in")
    page_out = len(paging) - page_in
    ecall_rows = np.flatnonzero(np.asarray(cols.kind, dtype=object) == ECALL)
    ecall_rows = ecall_rows[np.argsort(cols.start_ns[ecall_rows], kind="stable")]
    starts = cols.start_ns[ecall_rows]
    ends = cols.end_ns[ecall_rows]
    names = cols.name[ecall_rows]
    affected: dict[str, int] = {}
    for record in paging:
        idx = int(np.searchsorted(starts, record.timestamp_ns, side="right")) - 1
        if 0 <= idx < len(ecall_rows) and ends[idx] >= record.timestamp_ns:
            name = str(names[idx])
            affected[name] = affected.get(name, 0) + 1
    distinct_pages = len({(p.enclave_id, p.vaddr) for p in paging})
    return paging_findings_from_counts(affected, page_in, page_out, distinct_pages)
