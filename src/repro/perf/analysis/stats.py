"""General call statistics (paper §4.3.1).

Per ecall/ocall: call counts, mean and median duration, standard deviation
and the 90th/95th/99th percentiles; plus histogram and scatter series for
the Figure 7/8-style visualisations.

Remember the duration convention (§4.1.2): ocall durations are execution
time only and compare directly to the transition cost, while ecall
durations include one transition round-trip, which must be subtracted
before such comparisons.

Every entry point accepts either :class:`~repro.perf.columns.CallColumns`
(the fast path — durations come out of the arrays directly) or the legacy
``Sequence[CallEvent]`` form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Union

import numpy as np

from repro.perf.columns import CallColumns, as_columns
from repro.perf.events import CallEvent, ECALL

Calls = Union[CallColumns, Sequence[CallEvent]]


@dataclass(frozen=True)
class CallStatistics:
    """Summary statistics for one call (one ecall or ocall name)."""

    kind: str
    name: str
    count: int
    total_ns: int
    mean_ns: float
    median_ns: float
    std_ns: float
    p90_ns: float
    p95_ns: float
    p99_ns: float
    min_ns: int
    max_ns: int

    def row(self) -> tuple:
        """Tabular form for reports."""
        return (
            self.kind,
            self.name,
            self.count,
            round(self.mean_ns),
            round(self.median_ns),
            round(self.std_ns),
            round(self.p90_ns),
            round(self.p95_ns),
            round(self.p99_ns),
        )


@dataclass(frozen=True)
class Histogram:
    """Execution-time histogram (Figure 7 uses 100 bins)."""

    counts: tuple[int, ...]
    edges_ns: tuple[float, ...]

    def render(self, width: int = 60, max_rows: int = 25) -> str:
        """ASCII rendering for terminal reports."""
        if not self.counts:
            return "(empty histogram)"
        # Re-bin down to max_rows rows for readability.
        counts = np.asarray(self.counts, dtype=float)
        edges = np.asarray(self.edges_ns)
        if len(counts) > max_rows:
            factor = -(-len(counts) // max_rows)
            pad = (-len(counts)) % factor
            counts = np.pad(counts, (0, pad)).reshape(-1, factor).sum(axis=1)
            edges = edges[:: factor]
        peak = counts.max() or 1.0
        lines = []
        for i, count in enumerate(counts):
            low = edges[i] / 1000.0
            bar = "#" * int(round(width * count / peak))
            lines.append(f"{low:10.1f} us | {bar} {int(count)}")
        return "\n".join(lines)


def durations_ns(events: Calls) -> np.ndarray:
    """Measured durations of ``events`` as an array."""
    if isinstance(events, CallColumns):
        return events.duration_ns()
    return np.array([e.duration_ns for e in events], dtype=np.int64)


def execution_durations_ns(events: Calls, transition_round_trip_ns: int) -> np.ndarray:
    """Durations adjusted to *execution* time.

    Ecall durations include one transition round-trip (§4.1.2); ocall
    durations already exclude it.
    """
    values = durations_ns(events)
    if isinstance(events, CallColumns):
        is_ecall = len(events) > 0 and events.kind[0] == ECALL
    else:
        is_ecall = bool(events) and events[0].kind == ECALL
    if is_ecall:
        values = np.maximum(values - int(transition_round_trip_ns), 0)
    return values


def group_by_name(events: Iterable[CallEvent]) -> dict[tuple[str, str], list[CallEvent]]:
    """Group call events by ``(kind, name)`` (legacy event-object form)."""
    groups: dict[tuple[str, str], list[CallEvent]] = {}
    for event in events:
        groups.setdefault((event.kind, event.name), []).append(event)
    return groups


def compute_statistics(kind: str, name: str, events: Calls) -> CallStatistics:
    """Summary statistics over one group of events."""
    return _statistics_from_values(kind, name, durations_ns(events))


def _statistics_from_values(kind: str, name: str, values: np.ndarray) -> CallStatistics:
    if len(values) == 0:
        return CallStatistics(kind, name, 0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0, 0)
    return CallStatistics(
        kind=kind,
        name=name,
        count=int(len(values)),
        total_ns=int(values.sum()),
        mean_ns=float(values.mean()),
        median_ns=float(np.median(values)),
        std_ns=float(values.std()),
        p90_ns=float(np.percentile(values, 90)),
        p95_ns=float(np.percentile(values, 95)),
        p99_ns=float(np.percentile(values, 99)),
        min_ns=int(values.min()),
        max_ns=int(values.max()),
    )


def all_statistics(events: Calls) -> list[CallStatistics]:
    """Statistics for every distinct call, ordered by total time spent.

    Ties keep first-appearance order (the event-based grouping's
    dict-insertion semantics), so outputs are byte-identical across both
    input forms.
    """
    cols = as_columns(events)
    values = cols.duration_ns()
    stats = [
        _statistics_from_values(kind, name, values[idx])
        for (kind, name), idx in cols.group_indices()
    ]
    stats.sort(key=lambda s: s.total_ns, reverse=True)
    return stats


def histogram(events: Calls, bins: int = 100) -> Histogram:
    """Execution-time histogram over a group of events (Figure 7)."""
    values = durations_ns(events)
    if len(values) == 0:
        return Histogram(counts=(), edges_ns=())
    counts, edges = np.histogram(values, bins=bins)
    return Histogram(counts=tuple(int(c) for c in counts), edges_ns=tuple(float(e) for e in edges))


def scatter_series(events: Calls) -> tuple[np.ndarray, np.ndarray]:
    """(start time, duration) series over the run (Figure 8)."""
    if isinstance(events, CallColumns):
        return events.start_ns, events.duration_ns()
    starts = np.array([e.start_ns for e in events], dtype=np.int64)
    return starts, durations_ns(events)


def fraction_shorter_than(values: np.ndarray, threshold_ns: float) -> float:
    """Fraction of ``values`` strictly below ``threshold_ns``."""
    if len(values) == 0:
        return 0.0
    return float((values < threshold_ns).mean())
