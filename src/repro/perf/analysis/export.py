"""Machine-readable findings export (``sgxperf analyze --json``).

Serialises an :class:`~repro.perf.analysis.report.AnalysisReport`'s
findings to a stable JSON document — the contract the automatic interface
optimizer (:mod:`repro.optimizer`) consumes.  Stability matters twice
over: the schema is versioned so downstream tooling can detect drift, and
the byte stream is canonical (sorted keys, fixed float formatting via
``repr`` of Python floats, findings in priority order) so the in-memory
and streaming analysers — which already produce identical
:class:`Finding` objects by construction — also produce byte-identical
exports.
"""

from __future__ import annotations

import json
from typing import Any, Union

from repro.perf.analysis.detectors import Finding
from repro.perf.analysis.report import AnalysisReport

FINDINGS_SCHEMA = "sgxperf-findings/1"


def _plain(value: Any) -> Any:
    """Coerce evidence values to plain JSON-stable Python types.

    NumPy scalars become Python ints/floats; enums collapse to their
    names; tuple-keyed dicts (the SSC wake matrix) become sorted
    ``[key..., count]`` rows, since JSON objects cannot key on tuples.
    """
    if isinstance(value, bool):
        return value
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        value = value.item()
    if isinstance(value, (int, float, str)) or value is None:
        return value
    if isinstance(value, dict):
        if any(isinstance(k, tuple) for k in value):
            return [
                [*(_plain(part) for part in key), _plain(count)]
                for key, count in sorted(value.items(), key=lambda kv: repr(kv[0]))
            ]
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if hasattr(value, "name"):  # enum members
        return value.name
    return str(value)


def finding_to_dict(finding: Finding) -> dict:
    """One finding as a plain dict following the export schema."""
    return {
        "problem": finding.problem.name,
        "kind": finding.kind,
        "call": finding.call,
        "priority": finding.priority,
        "recommendations": [r.name for r in finding.recommendations],
        "message": finding.message,
        "evidence": _plain(finding.evidence),
    }


def report_to_dict(report: AnalysisReport) -> dict:
    """The full export document for one analysed trace."""
    return {
        "schema": FINDINGS_SCHEMA,
        "transition_round_trip_ns": report.transition_round_trip_ns,
        "counts": {
            "ecalls": report.ecall_count,
            "ocalls": report.ocall_count,
            "distinct_ecalls": report.distinct_ecalls,
            "distinct_ocalls": report.distinct_ocalls,
            "aex_total": report.aex_total,
            "paging_events": report.paging_events,
        },
        "short_fractions": {
            "ecall": report.ecall_short_fraction,
            "ocall": report.ocall_short_fraction,
        },
        "findings": [finding_to_dict(f) for f in report.findings_by_priority()],
    }


def report_to_json(report: AnalysisReport) -> str:
    """Canonical JSON text for ``--json`` output (byte-stable)."""
    return json.dumps(report_to_dict(report), sort_keys=True, indent=2)


def load_findings(document: Union[str, dict]) -> dict:
    """Parse an export document, checking the schema marker."""
    if isinstance(document, str):
        document = json.loads(document)
    schema = document.get("schema")
    if schema != FINDINGS_SCHEMA:
        raise ValueError(
            f"unsupported findings document schema {schema!r} "
            f"(expected {FINDINGS_SCHEMA!r})"
        )
    return document
