"""Human-readable analysis reports and the analyser facade (paper §4.3).

:class:`Analyzer` pulls a trace out of a :class:`TraceDatabase`, runs the
general statistics, every problem detector and the security analysis, and
packages the result as an :class:`AnalysisReport` that renders to text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.perf.analysis import callgraph as callgraph_mod
from repro.perf.analysis import detectors as det
from repro.perf.analysis import security as sec
from repro.perf.analysis import stats as stats_mod
from repro.perf.database import TraceDatabase
from repro.perf.events import ECALL, OCALL
from repro.sdk.edl import EnclaveDefinition
from repro.workloads.serving import percentile_ns

DEFAULT_TRANSITION_NS = 2_130  # §2.3.1 baseline if the trace lacks metadata


class FaultAccumulator:
    """Folds fault rows into kind counts and availability summaries.

    Mirrors :meth:`repro.workloads.serving.ServingStats.summary` so the
    offline analyser reproduces the numbers a live campaign reported:
    request counts, retries, shed/failed totals and nearest-rank latency
    percentiles parsed back out of ``serve:request`` details (``ok +N ns``).
    Both the in-memory and streaming analysers fold through this class, so
    the fault/availability sections cannot drift between them.  Per-request
    latencies are retained until :meth:`availability` (the percentiles need
    the full ordered set); everything else is O(distinct kinds).
    """

    def __init__(self) -> None:
        self.total = 0
        self.counts: dict[str, int] = {}
        self._per_workload: dict[str, dict] = {}
        # Resource-pressure accounting, parsed out of brownout:* rows.
        self.shed_by_class: dict[str, int] = {}
        self.brownout_transitions = 0
        self.brownout_deep_transitions = 0

    def _bucket(self, workload: str) -> dict:
        return self._per_workload.setdefault(
            workload,
            {
                "workload": workload,
                "attempted": 0,
                "succeeded": 0,
                "retries": 0,
                "shed": 0,
                "failed": 0,
                "latencies": [],
            },
        )

    def add(self, fault) -> None:
        self.total += 1
        self.counts[fault.kind] = self.counts.get(fault.kind, 0) + 1
        if fault.kind == "brownout:level":
            # detail: "normal -> brownout at 12345 pages/s"; escalations
            # only, matching BrownoutController.summary() semantics.
            order = ("normal", "brownout", "deep")
            words = fault.detail.split()
            if len(words) >= 3 and words[0] in order and words[2] in order:
                if order.index(words[2]) > order.index(words[0]):
                    self.brownout_transitions += 1
                    if words[2] == "deep":
                        self.brownout_deep_transitions += 1
            return
        if fault.kind == "brownout:shed":
            # detail: "class=read level=deep reason=brownout backlog=12"
            for token in fault.detail.split():
                if token.startswith("class="):
                    cls = token[len("class=") :]
                    self.shed_by_class[cls] = self.shed_by_class.get(cls, 0) + 1
                    break
            return
        if not fault.kind.startswith("serve:"):
            return
        entry = self._bucket(fault.call or "?")
        if fault.kind == "serve:request":
            entry["attempted"] += 1
            entry["succeeded"] += 1
            detail = fault.detail
            if detail.startswith("ok +") and detail.endswith(" ns"):
                entry["latencies"].append(int(detail[4:-3]))
        elif fault.kind == "serve:retry":
            entry["retries"] += 1
        elif fault.kind == "serve:shed":
            entry["shed"] += 1
        elif fault.kind == "serve:failed":
            entry["attempted"] += 1
            entry["failed"] += 1

    def availability(self) -> list[dict]:
        """Finalise the per-workload summaries (consumes the latencies)."""
        summaries = []
        for workload in sorted(self._per_workload):
            entry = self._per_workload[workload]
            ordered = sorted(entry.pop("latencies"))
            entry["success_rate"] = (
                entry["succeeded"] / entry["attempted"] if entry["attempted"] else 1.0
            )
            entry["p50_ns"] = percentile_ns(ordered, 50)
            entry["p99_ns"] = percentile_ns(ordered, 99)
            entry["p999_ns"] = percentile_ns(ordered, 99.9)
            summaries.append(entry)
        return summaries


def availability_from_faults(faults) -> list[dict]:
    """Per-workload availability summaries from a trace's ``serve:*`` rows."""
    acc = FaultAccumulator()
    for fault in faults:
        acc.add(fault)
    return acc.availability()


def apply_fault_annotations(
    report: "AnalysisReport",
    acc: FaultAccumulator,
    trace_state: Optional[str],
) -> None:
    """Attach the fault/recovery section and notes to a report.

    Shared by :class:`Analyzer` and the streaming analyser so both render
    the exact same fault section for the same trace.
    """
    if not acc.total and trace_state is None:
        return
    counts = acc.counts
    report.trace_state = trace_state
    report.fault_counts = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    report.truncated_calls = counts.get("truncated", 0)
    report.availability = acc.availability()
    report.pressure = {
        "brownout_transitions": acc.brownout_transitions,
        "brownout_deep_transitions": acc.brownout_deep_transitions,
        "shed_by_class": dict(sorted(acc.shed_by_class.items())),
        "epc_waits": counts.get("recover:epc-wait", 0),
        "epc_squeezes": counts.get("inject:epc-squeeze", 0),
        "stressor_windows": counts.get("inject:stressor-start", 0),
    }
    report.watchdog_counts = sorted(
        (kv for kv in counts.items() if kv[0].startswith("watchdog:")),
        key=lambda kv: kv[0],
    )
    losses = counts.get("inject:loss", 0)
    recreates = counts.get("recover:recreate", 0)
    retries = counts.get("recover:retry", 0)
    if losses or recreates:
        report.notes.append(
            f"enclave loss: {losses} lost, {recreates} re-created, "
            f"{retries} calls retried — statistics include retried calls"
        )
    if trace_state is not None:
        report.notes.append(
            f"trace was {trace_state}: {report.truncated_calls} call(s) "
            "closed at the trace horizon, not by returning"
        )


def apply_edl_note(report: "AnalysisReport", definition) -> None:
    """Append the no-EDL caveat (shared by both analyser paths)."""
    if definition is None:
        report.notes.append(
            "no EDL supplied: allow-list narrowing reports minimal observed "
            "sets; pass the enclave's EDL for removable-entry analysis"
        )


@dataclass
class AnalysisReport:
    """Everything the analyser produced for one trace."""

    statistics: list[stats_mod.CallStatistics]
    findings: list[det.Finding]
    transition_round_trip_ns: int
    ecall_count: int = 0
    ocall_count: int = 0
    ecall_short_fraction: float = 0.0
    ocall_short_fraction: float = 0.0
    distinct_ecalls: int = 0
    distinct_ocalls: int = 0
    aex_total: int = 0
    paging_events: int = 0
    notes: list[str] = field(default_factory=list)
    # Fault & recovery annotations: None/empty for clean fault-free traces.
    trace_state: Optional[str] = None  # None | "aborted" | "salvaged"
    fault_counts: list[tuple[str, int]] = field(default_factory=list)
    truncated_calls: int = 0
    # Serving-path availability: empty unless the trace has serve:* rows.
    availability: list[dict] = field(default_factory=list)
    watchdog_counts: list[tuple[str, int]] = field(default_factory=list)
    # Resource-pressure summary: empty unless fault annotations applied.
    pressure: dict = field(default_factory=dict)

    def findings_by_priority(self) -> list[det.Finding]:
        """Findings sorted best-priority-first (reorder > merge > move...)."""
        return sorted(self.findings, key=lambda f: (f.priority, f.call))

    def render_availability(self) -> str:
        """Render the availability-under-chaos section (``--availability``)."""
        lines: list[str] = []
        lines.append("-- availability " + "-" * 62)
        if not self.availability:
            lines.append("no serving-path events recorded (trace has no serve:* rows)")
        for entry in self.availability:
            lines.append(
                f"{entry['workload']}: {entry['succeeded']}/{entry['attempted']} "
                f"requests ok ({entry['success_rate']:.2%}), "
                f"{entry['retries']} retries, {entry['shed']} shed, "
                f"{entry['failed']} failed"
            )
            lines.append(
                f"  latency p50 {entry['p50_ns']} ns, p99 {entry['p99_ns']} ns, "
                f"p999 {entry['p999_ns']} ns"
            )
        if self.watchdog_counts:
            for kind, count in self.watchdog_counts:
                lines.append(f"{kind:30} {count:>8}")
        else:
            lines.append("watchdog: no hangs detected")
        return "\n".join(lines)

    def render_pressure(self) -> str:
        """Render the resource-pressure section (``--pressure``).

        Folds the brownout evidence rows (level transitions, typed sheds
        by priority class), EPC-wait degradation retries and the injected
        pressure events back out of the trace — the offline mirror of the
        per-shard brownout summary a cluster run prints live.
        """
        p = self.pressure
        lines: list[str] = []
        lines.append("-- pressure " + "-" * 66)
        interesting = p and (
            p["brownout_transitions"]
            or p["shed_by_class"]
            or p["epc_waits"]
            or p["epc_squeezes"]
            or p["stressor_windows"]
        )
        if not interesting:
            lines.append(
                "no resource-pressure events recorded "
                "(no brownout:*/inject:epc-*/inject:stressor-* rows)"
            )
            lines.append(f"paging events: {self.paging_events}")
            return "\n".join(lines)
        lines.append(f"paging events: {self.paging_events}")
        lines.append(
            f"injected: {p['stressor_windows']} stressor window(s), "
            f"{p['epc_squeezes']} EPC squeeze(s)"
        )
        lines.append(
            f"brownout: {p['brownout_transitions']} transition(s) "
            f"({p['brownout_deep_transitions']} deep)"
        )
        if p["shed_by_class"]:
            shed = ", ".join(
                f"{cls} {count}" for cls, count in p["shed_by_class"].items()
            )
            lines.append(f"shed by class: {shed}")
        else:
            lines.append("shed by class: none")
        lines.append(f"epc-wait degradation retries: {p['epc_waits']}")
        return "\n".join(lines)

    def render_text(self, max_stats_rows: int = 20) -> str:
        """Render the report for a terminal."""
        lines: list[str] = []
        lines.append("=" * 78)
        lines.append("sgx-perf analysis report")
        lines.append("=" * 78)
        lines.append(
            f"ecalls: {self.ecall_count} events over {self.distinct_ecalls} "
            f"distinct calls ({self.ecall_short_fraction:.2%} shorter than 10us)"
        )
        lines.append(
            f"ocalls: {self.ocall_count} events over {self.distinct_ocalls} "
            f"distinct calls ({self.ocall_short_fraction:.2%} shorter than 10us)"
        )
        lines.append(
            f"AEXs: {self.aex_total}   paging events: {self.paging_events}   "
            f"transition round-trip: {self.transition_round_trip_ns} ns"
        )
        if self.trace_state is not None:
            lines.append(
                f"trace state: {self.trace_state} — {self.truncated_calls} "
                "truncated call(s); truncated durations are lower bounds"
            )
        if self.fault_counts or self.trace_state is not None:
            lines.append("")
            lines.append("-- faults & recovery " + "-" * 57)
            if not self.fault_counts:
                lines.append("no fault events recorded")
            for kind, count in self.fault_counts:
                lines.append(f"{kind:30} {count:>8}")
        lines.append("")
        lines.append("-- general statistics (top by total time) " + "-" * 35)
        header = (
            f"{'kind':6} {'name':40} {'count':>8} {'mean':>9} {'median':>9} "
            f"{'std':>9} {'p90':>9} {'p95':>9} {'p99':>9}"
        )
        lines.append(header)
        for stat in self.statistics[:max_stats_rows]:
            kind, name, count, mean, median, std, p90, p95, p99 = stat.row()
            lines.append(
                f"{kind:6} {name[:40]:40} {count:>8} {mean:>9} {median:>9} "
                f"{std:>9} {p90:>9} {p95:>9} {p99:>9}"
            )
        if len(self.statistics) > max_stats_rows:
            lines.append(f"... ({len(self.statistics) - max_stats_rows} more)")
        lines.append("")
        lines.append("-- findings (priority order: reorder < merge/batch < move) " + "-" * 17)
        if not self.findings:
            lines.append("no problems detected")
        for finding in self.findings_by_priority():
            recs = "; ".join(r.value for r in finding.recommendations)
            lines.append(
                f"[P{finding.priority}] {finding.problem.name}: "
                f"{finding.kind} {finding.call}"
            )
            lines.append(f"      {finding.message}")
            lines.append(f"      -> {recs}")
        if self.notes:
            lines.append("")
            lines.append("-- notes " + "-" * 69)
            lines.extend(f"* {note}" for note in self.notes)
        return "\n".join(lines)


class Analyzer:
    """The sgx-perf analyser: trace database in, report out."""

    def __init__(
        self,
        database: TraceDatabase,
        definition: Optional[EnclaveDefinition] = None,
        weights: Optional[det.AnalyzerWeights] = None,
    ) -> None:
        self.db = database
        self.definition = definition
        self.weights = weights or det.AnalyzerWeights()
        self._cols = None

    def _columns(self):
        """The trace's call columns, fetched once and shared.

        The report summary, scatter series, histograms and call graph all
        work off this one read instead of re-querying the database.
        """
        if self._cols is None:
            self._cols = self.db.call_columns()
        return self._cols

    def run(self) -> AnalysisReport:
        """Run every analysis over the trace."""
        calls = self._columns()
        sync_events = self.db.sync_events()
        paging = self.db.paging_events()
        faults = self.db.fault_events()
        trace_state = self.db.get_meta("trace_state")
        transition_ns = int(
            self.db.get_meta("transition_round_trip_ns", str(DEFAULT_TRANSITION_NS))
        )
        weights = self.weights

        findings: list[det.Finding] = []
        findings += det.detect_reorder_candidates(calls, weights)
        findings += det.detect_merge_batch_candidates(calls, weights)
        findings += det.detect_move_candidates(calls, transition_ns, weights)
        findings += det.detect_ssc(calls, sync_events, weights)
        findings += det.detect_paging(calls, paging)
        findings += sec.private_ecall_candidates(calls)
        findings += sec.allowlist_findings(calls, self.definition)
        if self.definition is not None:
            findings += sec.user_check_findings(self.definition, calls)

        kinds = np.asarray(calls.kind, dtype=object)
        ecalls = calls.select(kinds == ECALL)
        ocalls = calls.select(kinds == OCALL)
        ecall_exec = stats_mod.execution_durations_ns(ecalls, transition_ns)
        ocall_exec = stats_mod.execution_durations_ns(ocalls, transition_ns)
        report = AnalysisReport(
            statistics=stats_mod.all_statistics(calls),
            findings=findings,
            transition_round_trip_ns=transition_ns,
            ecall_count=len(ecalls),
            ocall_count=len(ocalls),
            ecall_short_fraction=stats_mod.fraction_shorter_than(
                ecall_exec, weights.short_call_ns
            ),
            ocall_short_fraction=stats_mod.fraction_shorter_than(
                ocall_exec, weights.short_call_ns
            ),
            distinct_ecalls=len(set(ecalls.name.tolist())),
            distinct_ocalls=len(set(ocalls.name.tolist())),
            aex_total=int(calls.aex_count.sum()),
            paging_events=len(paging),
        )
        fault_acc = FaultAccumulator()
        for fault in faults:
            fault_acc.add(fault)
        apply_fault_annotations(report, fault_acc, trace_state)
        apply_edl_note(report, self.definition)
        return report

    # -- visualisation helpers -------------------------------------------------

    def _select(self, kind: str, name: str):
        """Filter the shared columns — same rows/order as a filtered query."""
        cols = self._columns()
        kinds = np.asarray(cols.kind, dtype=object)
        names = np.asarray(cols.name, dtype=object)
        return cols.select((kinds == kind) & (names == name))

    def histogram(self, kind: str, name: str, bins: int = 100) -> stats_mod.Histogram:
        """Execution-time histogram for one call (Figure 7)."""
        return stats_mod.histogram(self._select(kind, name), bins=bins)

    def scatter(self, kind: str, name: str):
        """(start, duration) scatter series for one call (Figure 8)."""
        return stats_mod.scatter_series(self._select(kind, name))

    def call_graph(self):
        """Name-level call graph with direct/indirect edges (Figure 5)."""
        return callgraph_mod.build_call_graph(self._columns())

    def call_graph_dot(self) -> str:
        """Figure 5-style Graphviz DOT text."""
        return callgraph_mod.to_dot(self.call_graph())
