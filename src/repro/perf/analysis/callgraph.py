"""Call graphs of ecall/ocall dependencies (paper §4.3.1, Figure 5).

Nodes are calls ("[id] name", square for ecalls, round for ocalls); solid
edges connect direct parents to children, dashed edges connect indirect
parents; edge labels carry call counts.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx

from repro.perf.analysis import parents as parents_mod
from repro.perf.events import CallEvent, ECALL

DIRECT = "direct"
INDIRECT = "indirect"


def build_call_graph(calls: Sequence[CallEvent]) -> nx.MultiDiGraph:
    """Aggregate per-event parent relations into a name-level graph."""
    graph = nx.MultiDiGraph()
    by_id = parents_mod.index_by_id(calls)
    indirect = parents_mod.compute_indirect_parents(calls)

    def node_key(event: CallEvent) -> str:
        return f"{event.kind}:{event.name}"

    def ensure_node(event: CallEvent) -> str:
        key = node_key(event)
        if key not in graph:
            graph.add_node(
                key,
                name=event.name,
                kind=event.kind,
                call_index=event.call_index,
                count=0,
            )
        return key

    def bump_edge(src: str, dst: str, relation: str) -> None:
        data = graph.get_edge_data(src, dst, key=relation)
        if data is None:
            graph.add_edge(src, dst, key=relation, relation=relation, count=1)
        else:
            data["count"] += 1

    for event in calls:
        key = ensure_node(event)
        graph.nodes[key]["count"] += 1
        if event.parent_id is not None and event.parent_id in by_id:
            parent = by_id[event.parent_id]
            bump_edge(ensure_node(parent), key, DIRECT)
        parent_id = indirect.get(event.event_id)
        if parent_id is not None and parent_id in by_id:
            parent = by_id[parent_id]
            bump_edge(ensure_node(parent), key, INDIRECT)
    return graph


def to_dot(graph: nx.MultiDiGraph) -> str:
    """Render the call graph as Graphviz DOT, in the paper's style.

    Square nodes are ecalls, round nodes are ocalls; solid arrows are
    direct-parent edges, dashed arrows indirect-parent edges; numbers on
    edges are call counts, numbers in node brackets are call identifiers.
    """
    lines = ["digraph enclave_calls {", "    rankdir=TB;"]
    ids = {key: i for i, key in enumerate(sorted(graph.nodes))}
    for key in sorted(graph.nodes):
        data = graph.nodes[key]
        shape = "box" if data["kind"] == ECALL else "ellipse"
        label = f"[{data['call_index']}] {data['name']}"
        lines.append(f'    n{ids[key]} [shape={shape}, label="{label}"];')
    for src, dst, edge_key, data in sorted(graph.edges(keys=True, data=True)):
        style = "solid" if data["relation"] == DIRECT else "dashed"
        lines.append(
            f'    n{ids[src]} -> n{ids[dst]} '
            f'[style={style}, label="{data["count"]}"];'
        )
    lines.append("}")
    return "\n".join(lines)


def edge_counts(graph: nx.MultiDiGraph, relation: str = DIRECT) -> dict[tuple[str, str], int]:
    """(parent name, child name) → count for one relation kind."""
    result: dict[tuple[str, str], int] = {}
    for src, dst, edge_key, data in graph.edges(keys=True, data=True):
        if data["relation"] == relation:
            src_name = graph.nodes[src]["name"]
            dst_name = graph.nodes[dst]["name"]
            result[(src_name, dst_name)] = data["count"]
    return result
