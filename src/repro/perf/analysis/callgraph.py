"""Call graphs of ecall/ocall dependencies (paper §4.3.1, Figure 5).

Nodes are calls ("[id] name", square for ecalls, round for ocalls); solid
edges connect direct parents to children, dashed edges connect indirect
parents; edge labels carry call counts.

The graph is aggregated from :class:`~repro.perf.columns.CallColumns` —
per-event parent relations reduce to ``np.unique`` counts over code pairs
rather than a Python loop over every event.
"""

from __future__ import annotations

from typing import Sequence, Union

import networkx as nx
import numpy as np

from repro.perf.analysis import parents as parents_mod
from repro.perf.columns import CallColumns, as_columns
from repro.perf.events import CallEvent, ECALL

DIRECT = "direct"
INDIRECT = "indirect"


def _bump_pair_edges(
    graph: nx.MultiDiGraph,
    node_keys: list[str],
    src_codes: np.ndarray,
    dst_codes: np.ndarray,
    relation: str,
) -> None:
    """Add one ``relation`` edge per distinct (src, dst) pair with its count,
    in first-appearance order."""
    if len(src_codes) == 0:
        return
    n_codes = len(node_keys)
    pair = src_codes * n_codes + dst_codes
    uniq, first, counts = np.unique(pair, return_index=True, return_counts=True)
    appearance = np.argsort(first, kind="stable")
    for u, c in zip(uniq[appearance].tolist(), counts[appearance].tolist()):
        src, dst = node_keys[u // n_codes], node_keys[u % n_codes]
        graph.add_edge(src, dst, key=relation, relation=relation, count=int(c))


def build_call_graph(calls: Union[CallColumns, Sequence[CallEvent]]) -> nx.MultiDiGraph:
    """Aggregate per-event parent relations into a name-level graph."""
    cols = as_columns(calls)
    graph = nx.MultiDiGraph()
    if len(cols) == 0:
        return graph
    codes, keys = cols.group_codes()
    node_keys = [f"{kind}:{name}" for kind, name in keys]
    for (kind, name), rows in cols.group_indices():
        first = int(rows[0])
        graph.add_node(
            node_keys[int(codes[first])],
            name=name,
            kind=kind,
            call_index=int(cols.call_index[first]),
            count=int(len(rows)),
        )
    parent_pos = cols.positions_of(cols.parent_id)
    direct_children = np.flatnonzero(parent_pos >= 0)
    _bump_pair_edges(
        graph, node_keys, codes[parent_pos[direct_children]], codes[direct_children], DIRECT
    )
    ind_children, ind_parents = parents_mod.indirect_parent_links(cols)
    _bump_pair_edges(graph, node_keys, codes[ind_parents], codes[ind_children], INDIRECT)
    return graph


def to_dot(graph: nx.MultiDiGraph) -> str:
    """Render the call graph as Graphviz DOT, in the paper's style.

    Square nodes are ecalls, round nodes are ocalls; solid arrows are
    direct-parent edges, dashed arrows indirect-parent edges; numbers on
    edges are call counts, numbers in node brackets are call identifiers.
    """
    lines = ["digraph enclave_calls {", "    rankdir=TB;"]
    ids = {key: i for i, key in enumerate(sorted(graph.nodes))}
    for key in sorted(graph.nodes):
        data = graph.nodes[key]
        shape = "box" if data["kind"] == ECALL else "ellipse"
        label = f"[{data['call_index']}] {data['name']}"
        lines.append(f'    n{ids[key]} [shape={shape}, label="{label}"];')
    for src, dst, edge_key, data in sorted(graph.edges(keys=True, data=True)):
        style = "solid" if data["relation"] == DIRECT else "dashed"
        lines.append(
            f'    n{ids[src]} -> n{ids[dst]} '
            f'[style={style}, label="{data["count"]}"];'
        )
    lines.append("}")
    return "\n".join(lines)


def edge_counts(graph: nx.MultiDiGraph, relation: str = DIRECT) -> dict[tuple[str, str], int]:
    """(parent name, child name) → count for one relation kind."""
    result: dict[tuple[str, str], int] = {}
    for src, dst, edge_key, data in graph.edges(keys=True, data=True):
        if data["relation"] == relation:
            src_name = graph.nodes[src]["name"]
            dst_name = graph.nodes[dst]["name"]
            result[(src_name, dst_name)] = data["count"]
    return result
