"""Sharded parallel trace analysis (thread-level data parallelism).

A trace's call rows partition cleanly by thread: the direct-parent window
and Figure 4 chains are per-thread state, and every remaining accumulator
in :class:`~repro.perf.analysis.streaming.CallFold` merges commutatively.
So the trace is sharded by ``thread_id`` (greedy LPT over per-thread row
counts, so one hot thread doesn't serialise the run), each shard folded
in its own spawn-context worker process over a **read-only** database
handle, and the sealed folds merged in deterministic shard-index order —
which, because the merge is commutative over disjoint thread sets,
reproduces the sequential fold's state exactly.

Mirrors the sweep engine's process model (spawn context, shared-nothing
workers, ``BrokenProcessPool`` tolerance): the coordinator builds the
read indexes *before* the workers attach, so workers never take SQLite's
write lock, and a lost pool degrades to the in-process fold rather than
failing the analysis.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context
from typing import Optional, Sequence

from repro.perf.analysis import detectors as det
from repro.perf.analysis.streaming import CallFold


def shard_threads(
    thread_counts: Sequence[tuple[int, int]], shards: int
) -> list[list[int]]:
    """Partition threads into ≤ ``shards`` balanced groups (greedy LPT).

    Deterministic: threads are placed heaviest-first (ties by thread id)
    onto the least-loaded shard (ties by shard index); each shard's
    thread list comes back sorted.  Empty shards are dropped.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    groups: list[list[int]] = [[] for _ in range(shards)]
    loads = [0] * shards
    for thread_id, count in sorted(thread_counts, key=lambda tc: (-tc[1], tc[0])):
        target = min(range(shards), key=lambda j: (loads[j], j))
        groups[target].append(thread_id)
        loads[target] += count
    return [sorted(group) for group in groups if group]


def _fold_shard(
    path: str,
    thread_ids: list[int],
    chunk_events: int,
    transition_ns: int,
    weights: det.AnalyzerWeights,
    sleep_counts: dict[int, int],
) -> CallFold:
    """Worker: fold one shard's threads from a fresh read-only handle."""
    from repro.perf.database import TraceDatabase

    db = TraceDatabase(path, readonly=True)
    try:
        fold = CallFold(transition_ns, weights, sleep_counts)
        for cols in db.call_columns_chunks(
            chunk_events, thread_ids=thread_ids, order="thread"
        ):
            fold.fold(cols)
        return fold.seal()
    finally:
        db.close()


def parallel_fold(
    db,
    transition_ns: int,
    weights: det.AnalyzerWeights,
    sleep_counts: dict[int, int],
    jobs: int,
    chunk_events: int,
) -> Optional[CallFold]:
    """Fold a file-backed trace across worker processes; ``None`` = fall back.

    Returns ``None`` when sharding cannot help (≤1 non-empty thread
    shard) or the worker pool is lost, in which case the caller runs the
    in-process fold instead — same result, one process.
    """
    # Build the read indexes up front: workers open mode=ro connections
    # and must never need the write lock.
    thread_counts = db.thread_row_counts()
    shards = shard_threads(thread_counts, max(1, jobs))
    if len(shards) <= 1:
        return None
    try:
        with ProcessPoolExecutor(
            max_workers=len(shards), mp_context=get_context("spawn")
        ) as pool:
            futures = [
                pool.submit(
                    _fold_shard,
                    db.path,
                    thread_ids,
                    chunk_events,
                    transition_ns,
                    weights,
                    sleep_counts,
                )
                for thread_ids in shards
            ]
            folds = [future.result() for future in futures]
    except BrokenProcessPool:
        return None
    merged = folds[0]
    for fold in folds[1:]:
        merged.merge(fold)
    return merged
