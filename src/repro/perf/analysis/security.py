"""Enclave interface security analysis (paper §3.6, §4.3.2).

Three hints, all derived from observed behaviour plus (optionally) the EDL:

1. **Private-ecall candidates** — ecalls whose every observed instance ran
   during an ocall can be declared ``private``, shrinking the set of paths
   into the enclave.  Workload-dependent by nature, as the paper notes.
2. **Allow-list narrowing** — ecalls an ocall *allows* but was never seen
   to make should be removed; without an EDL the minimal allow set per
   ocall is reported instead.
3. **user_check pointers** — parameters the SDK copies nothing for; the
   developer owns every check, so each one is flagged for review.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.perf.analysis import parents as parents_mod
from repro.perf.analysis.detectors import Finding, Problem, Recommendation
from repro.perf.events import CallEvent, ECALL, OCALL
from repro.sdk.edl import Direction, EnclaveDefinition


def private_ecall_candidates(calls: Sequence[CallEvent]) -> list[Finding]:
    """Ecalls only ever issued during ocalls → recommend ``private``."""
    by_id = parents_mod.index_by_id(calls)
    always_nested: dict[str, set[str]] = {}
    disqualified: set[str] = set()
    for call in calls:
        if call.kind != ECALL:
            continue
        parent = by_id.get(call.parent_id) if call.parent_id is not None else None
        if parent is not None and parent.kind == OCALL:
            always_nested.setdefault(call.name, set()).add(parent.name)
        else:
            disqualified.add(call.name)
    findings = []
    for name in sorted(set(always_nested) - disqualified):
        parents = sorted(always_nested[name])
        findings.append(
            Finding(
                problem=Problem.INTERFACE,
                kind=ECALL,
                call=name,
                recommendations=(Recommendation.MAKE_PRIVATE,),
                message=(
                    f"every observed instance ran during an ocall; declare it "
                    f"private and allow it from: {', '.join(parents)} "
                    "(workload-dependent — verify against all call paths)"
                ),
                evidence={"allowing_ocalls": parents},
            )
        )
    return findings


def observed_allow_sets(calls: Sequence[CallEvent]) -> dict[str, set[str]]:
    """Ocall name → set of ecall names actually issued during it."""
    by_id = parents_mod.index_by_id(calls)
    observed: dict[str, set[str]] = {}
    for call in calls:
        if call.kind != ECALL or call.parent_id is None:
            continue
        parent = by_id.get(call.parent_id)
        if parent is not None and parent.kind == OCALL:
            observed.setdefault(parent.name, set()).add(call.name)
    return observed


def allowlist_findings(
    calls: Sequence[CallEvent],
    definition: Optional[EnclaveDefinition] = None,
) -> list[Finding]:
    """Compare declared ``allow(...)`` lists against observed behaviour.

    With an EDL: report removable entries per ocall.  Without one: state
    the smallest allow set that would have sufficed for this workload.
    """
    observed = observed_allow_sets(calls)
    findings: list[Finding] = []
    if definition is None:
        for ocall_name, ecalls in sorted(observed.items()):
            findings.append(
                Finding(
                    problem=Problem.INTERFACE,
                    kind=OCALL,
                    call=ocall_name,
                    recommendations=(Recommendation.NARROW_ALLOWLIST,),
                    message=(
                        "smallest sufficient allow set for this workload: "
                        f"allow({', '.join(sorted(ecalls))})"
                    ),
                    evidence={"observed": sorted(ecalls)},
                )
            )
        return findings
    for ocall in definition.ocalls:
        declared = set(ocall.allowed_ecalls)
        if not declared:
            continue
        used = observed.get(ocall.name, set())
        removable = sorted(declared - used)
        if removable:
            findings.append(
                Finding(
                    problem=Problem.INTERFACE,
                    kind=OCALL,
                    call=ocall.name,
                    recommendations=(Recommendation.NARROW_ALLOWLIST,),
                    message=(
                        f"allow list wider than observed behaviour; remove: "
                        f"{', '.join(removable)}"
                        + (
                            f" (keep: {', '.join(sorted(used))})"
                            if used
                            else " (no nested ecalls observed at all)"
                        )
                    ),
                    evidence={"removable": removable, "observed": sorted(used)},
                )
            )
    return findings


def user_check_findings(
    definition: EnclaveDefinition,
    calls: Sequence[CallEvent] = (),
) -> list[Finding]:
    """Flag every ``user_check`` pointer, with observed call counts."""
    counts: dict[tuple[str, str], int] = {}
    for call in calls:
        key = (call.kind, call.name)
        counts[key] = counts.get(key, 0) + 1
    findings = []
    for kind, call_name, param in definition.user_check_params():
        observed = counts.get((kind, call_name), 0)
        findings.append(
            Finding(
                problem=Problem.INTERFACE,
                kind=kind,
                call=call_name,
                recommendations=(Recommendation.CHECK_POINTERS,),
                message=(
                    f"parameter {param.name!r} ({param.ctype}) is user_check: "
                    "no copy, no bounds check by the SDK — audit for buffer "
                    "overflows, TOCTOU and enclave-address leaks"
                    + (f"; called {observed} times in this trace" if observed else "")
                ),
                evidence={"param": param.name, "observed_calls": observed},
            )
        )
    return findings
