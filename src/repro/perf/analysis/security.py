"""Enclave interface security analysis (paper §3.6, §4.3.2).

Three hints, all derived from observed behaviour plus (optionally) the EDL:

1. **Private-ecall candidates** — ecalls whose every observed instance ran
   during an ocall can be declared ``private``, shrinking the set of paths
   into the enclave.  Workload-dependent by nature, as the paper notes.
2. **Allow-list narrowing** — ecalls an ocall *allows* but was never seen
   to make should be removed; without an EDL the minimal allow set per
   ocall is reported instead.
3. **user_check pointers** — parameters the SDK copies nothing for; the
   developer owns every check, so each one is flagged for review.

Inputs are coerced to :class:`~repro.perf.columns.CallColumns`; the
parent-kind joins run on arrays rather than per-event dict lookups.

Each hint reduces the trace to plain sets/counts first (nested-parent
sets, observed allow sets, per-call counts), then hands those to a
``*_findings_from_*`` builder holding the message formats.  The streaming
analyser accumulates the same sets chunk by chunk and calls the same
builders, keeping both paths byte-identical.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.perf.analysis.detectors import Finding, Problem, Recommendation
from repro.perf.columns import CallColumns, as_columns
from repro.perf.events import CallEvent, ECALL, OCALL
from repro.sdk.edl import EnclaveDefinition

Calls = Union[CallColumns, Sequence[CallEvent]]


def _nested_ecall_pairs(cols: CallColumns) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(ecall rows, their parent rows, nested-under-ocall mask over ecall rows)."""
    kinds = np.asarray(cols.kind, dtype=object)
    ecall_rows = np.flatnonzero(kinds == ECALL)
    parent_pos = cols.positions_of(cols.parent_id[ecall_rows])
    has_ocall_parent = np.zeros(len(ecall_rows), dtype=bool)
    found = parent_pos >= 0
    if found.any():
        has_ocall_parent[found] = kinds[parent_pos[found]] == OCALL
    return ecall_rows, parent_pos, has_ocall_parent


def private_ecall_findings_from_sets(
    nested_under: dict[str, set[str]],
    disqualified: set[str],
) -> list[Finding]:
    """Private-ecall hints from the nested-parent / top-level name sets.

    ``nested_under`` maps an ecall name to the ocall names it was observed
    nested under; ``disqualified`` names ecalls seen at top level at least
    once.
    """
    findings = []
    for name in sorted(set(nested_under) - disqualified):
        parents = sorted(nested_under[name])
        findings.append(
            Finding(
                problem=Problem.INTERFACE,
                kind=ECALL,
                call=name,
                recommendations=(Recommendation.MAKE_PRIVATE,),
                message=(
                    f"every observed instance ran during an ocall; declare it "
                    f"private and allow it from: {', '.join(parents)} "
                    "(workload-dependent — verify against all call paths)"
                ),
                evidence={"allowing_ocalls": parents},
            )
        )
    return findings


def private_ecall_candidates(calls: Calls) -> list[Finding]:
    """Ecalls only ever issued during ocalls → recommend ``private``."""
    cols = as_columns(calls)
    ecall_rows, parent_pos, nested = _nested_ecall_pairs(cols)
    if len(ecall_rows) == 0:
        return []
    always_nested: dict[str, set[str]] = {}
    nested_names = cols.name[ecall_rows[nested]]
    parent_names = cols.name[parent_pos[nested]]
    for child, parent in zip(nested_names.tolist(), parent_names.tolist()):
        always_nested.setdefault(child, set()).add(parent)
    disqualified = set(cols.name[ecall_rows[~nested]].tolist())
    return private_ecall_findings_from_sets(always_nested, disqualified)


def observed_allow_sets(calls: Calls) -> dict[str, set[str]]:
    """Ocall name → set of ecall names actually issued during it."""
    cols = as_columns(calls)
    ecall_rows, parent_pos, nested = _nested_ecall_pairs(cols)
    observed: dict[str, set[str]] = {}
    if len(ecall_rows) == 0:
        return observed
    nested_names = cols.name[ecall_rows[nested]]
    parent_names = cols.name[parent_pos[nested]]
    for child, parent in zip(nested_names.tolist(), parent_names.tolist()):
        observed.setdefault(parent, set()).add(child)
    return observed


def allowlist_findings_from_observed(
    observed: dict[str, set[str]],
    definition: Optional[EnclaveDefinition] = None,
) -> list[Finding]:
    """Allow-list hints from the observed ocall → nested-ecall sets."""
    findings: list[Finding] = []
    if definition is None:
        for ocall_name, ecalls in sorted(observed.items()):
            findings.append(
                Finding(
                    problem=Problem.INTERFACE,
                    kind=OCALL,
                    call=ocall_name,
                    recommendations=(Recommendation.NARROW_ALLOWLIST,),
                    message=(
                        "smallest sufficient allow set for this workload: "
                        f"allow({', '.join(sorted(ecalls))})"
                    ),
                    evidence={"observed": sorted(ecalls)},
                )
            )
        return findings
    for ocall in definition.ocalls:
        declared = set(ocall.allowed_ecalls)
        if not declared:
            continue
        used = observed.get(ocall.name, set())
        removable = sorted(declared - used)
        if removable:
            findings.append(
                Finding(
                    problem=Problem.INTERFACE,
                    kind=OCALL,
                    call=ocall.name,
                    recommendations=(Recommendation.NARROW_ALLOWLIST,),
                    message=(
                        f"allow list wider than observed behaviour; remove: "
                        f"{', '.join(removable)}"
                        + (
                            f" (keep: {', '.join(sorted(used))})"
                            if used
                            else " (no nested ecalls observed at all)"
                        )
                    ),
                    evidence={"removable": removable, "observed": sorted(used)},
                )
            )
    return findings


def allowlist_findings(
    calls: Calls,
    definition: Optional[EnclaveDefinition] = None,
) -> list[Finding]:
    """Compare declared ``allow(...)`` lists against observed behaviour.

    With an EDL: report removable entries per ocall.  Without one: state
    the smallest allow set that would have sufficed for this workload.
    """
    return allowlist_findings_from_observed(observed_allow_sets(calls), definition)


def user_check_findings_from_counts(
    definition: EnclaveDefinition,
    counts: dict[tuple[str, str], int],
) -> list[Finding]:
    """user_check hints from per-(kind, name) observed call counts."""
    findings = []
    for kind, call_name, param in definition.user_check_params():
        observed = counts.get((kind, call_name), 0)
        findings.append(
            Finding(
                problem=Problem.INTERFACE,
                kind=kind,
                call=call_name,
                recommendations=(Recommendation.CHECK_POINTERS,),
                message=(
                    f"parameter {param.name!r} ({param.ctype}) is user_check: "
                    "no copy, no bounds check by the SDK — audit for buffer "
                    "overflows, TOCTOU and enclave-address leaks"
                    + (f"; called {observed} times in this trace" if observed else "")
                ),
                evidence={"param": param.name, "observed_calls": observed},
            )
        )
    return findings


def user_check_findings(
    definition: EnclaveDefinition,
    calls: Calls = (),
) -> list[Finding]:
    """Flag every ``user_check`` pointer, with observed call counts."""
    cols = as_columns(calls)
    counts = {key: len(rows) for key, rows in cols.group_indices()}
    return user_check_findings_from_counts(definition, counts)
