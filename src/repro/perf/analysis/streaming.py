"""Streaming (windowed-memory) analyser — the in-memory path's exact twin.

The offline analyser materialises the whole trace; this module folds the
same analyses over bounded-size column batches from
:meth:`~repro.perf.database.TraceDatabase.call_columns_chunks` instead,
so a multi-GB trace is analysed in O(window) transient memory plus the
per-call-site accumulator state.

**Byte-identity is the contract.**  Every decision goes through the same
``*_finding_from_counts`` builders as the in-memory detectors, and every
float that appears in a report is reproduced exactly:

* threshold *fractions* are accumulated as integer counts and divided
  once (``(arr < t).mean()`` equals ``count / total`` for bool arrays);
* ecall *execution-time* thresholds use the identity
  ``max(d - T, 0) < t  ⇔  d < T + t`` so no subtracted array is kept;
* per-call mean/std are order-dependent under NumPy's pairwise
  summation, so each call site keeps its raw ``(start, id, duration)``
  triples (24 bytes/row — far below the materialised row tuples the
  in-memory reader peaks at) and re-sorts them to the global
  ``(start, id)`` reader order at finalise time.

Batches must arrive **thread-major** (``ORDER BY thread_id, start_ns,
id``): each thread is one contiguous run, so the direct-parent window and
the Figure 4 indirect-parent chains reset per thread and stay small.  The
fold relies on the event logger's recording invariants — a call's direct
parent is on the same thread and its interval encloses the child's start.

A :class:`CallFold` is plain picklable state with a commutative
:meth:`CallFold.merge`, which is what lets the parallel analyser shard a
trace by thread across spawn-context workers and still match the
sequential result exactly (see :mod:`repro.perf.analysis.parallel`).
Detectors that need cross-thread global state — SSC sleep matching,
paging attribution, fault/availability summaries — run as sequential
coordinator passes over the (small) side tables instead.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx
import numpy as np

from repro.perf.analysis import callgraph as callgraph_mod
from repro.perf.analysis import detectors as det
from repro.perf.analysis import security as sec
from repro.perf.analysis import stats as stats_mod
from repro.perf.columns import NO_PARENT, CallColumns
from repro.perf.events import ECALL, OCALL

_SEP = "\x00"  # sorts below any name character: string sort == tuple sort


def _join2(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.array([x + _SEP + y for x, y in zip(a, b)], dtype=object)


def _join4(a: np.ndarray, b: np.ndarray, c: np.ndarray, d: np.ndarray) -> np.ndarray:
    return np.array(
        [w + _SEP + x + _SEP + y + _SEP + z for w, x, y, z in zip(a, b, c, d)],
        dtype=object,
    )


class _GroupState:
    """Accumulator for one (kind, name) call site."""

    __slots__ = (
        "kind",
        "name",
        "count",
        "first_start",
        "first_id",
        "call_index",
        "is_sync_first",
        "starts",
        "ids",
        "durs",
        "n1",
        "n5",
        "n10",
    )

    def __init__(self, kind: str, name: str) -> None:
        self.kind = kind
        self.name = name
        self.count = 0
        self.first_start: Optional[int] = None  # earliest (start, id) row
        self.first_id = 0
        self.call_index = 0
        self.is_sync_first = False
        self.starts: list[np.ndarray] = []
        self.ids: list[np.ndarray] = []
        self.durs: list[np.ndarray] = []
        self.n1 = 0  # execution-time threshold counts (Equation 1)
        self.n5 = 0
        self.n10 = 0

    def update_first(
        self, start: int, event_id: int, call_index: int, is_sync: bool
    ) -> None:
        if self.first_start is None or (start, event_id) < (self.first_start, self.first_id):
            self.first_start, self.first_id = start, event_id
            self.call_index = call_index
            self.is_sync_first = is_sync

    def merge(self, other: "_GroupState") -> None:
        self.count += other.count
        self.starts += other.starts
        self.ids += other.ids
        self.durs += other.durs
        self.n1 += other.n1
        self.n5 += other.n5
        self.n10 += other.n10
        if other.first_start is not None:
            self.update_first(
                other.first_start, other.first_id, other.call_index, other.is_sync_first
            )

    def sorted_durations(self) -> np.ndarray:
        """Durations re-sorted to the global ``(start, id)`` reader order."""
        if not self.durs:
            return np.empty(0, dtype=np.int64)
        starts = np.concatenate(self.starts)
        ids = np.concatenate(self.ids)
        durs = np.concatenate(self.durs)
        return durs[np.lexsort((ids, starts))]


class _ThreadState:
    """Transient per-thread parent window and Figure 4 chain tails.

    ``window`` maps an *open* call id (one whose interval may still
    enclose future rows of this thread) to ``(start, end, kind, name)``.
    ``chains`` maps ``(parent_id, kind)`` to the ``(end, kind, name)`` of
    the chain's last element.  ``dangling`` remembers parent ids that
    never resolved (rows referencing calls an aborted logger lost), whose
    chains must survive window-based eviction.
    """

    __slots__ = ("thread_id", "window", "chains", "dangling")

    def __init__(self, thread_id: int) -> None:
        self.thread_id = thread_id
        self.window: dict[int, tuple[int, int, str, str]] = {}
        self.chains: dict[tuple[int, str], tuple[int, str, str]] = {}
        self.dangling: set[int] = set()


class CallFold:
    """Folds thread-major call batches into every per-call accumulator.

    Picklable; :meth:`merge` is commutative over disjoint thread sets, so
    shard folds combine into exactly the sequential fold's state.
    """

    def __init__(
        self,
        transition_round_trip_ns: int,
        weights: det.AnalyzerWeights,
        sleep_counts: Optional[dict[int, int]] = None,
    ) -> None:
        self.transition_ns = int(transition_round_trip_ns)
        self.weights = weights
        # Sleep call_id → multiplicity, from the coordinator's sync pass.
        self.sleep_counts = dict(sleep_counts or {})
        self._sleep_ids: Optional[np.ndarray] = (
            np.fromiter(
                sorted(self.sleep_counts), dtype=np.int64, count=len(self.sleep_counts)
            )
            if self.sleep_counts
            else None
        )
        self.groups: dict[tuple[str, str], _GroupState] = {}
        self.ecall_rows = 0
        self.ocall_rows = 0
        self.ecall_short = 0
        self.ocall_short = 0
        self.aex_total = 0
        # (kind, name, parent_name) → [total, s10, s20, e10, e20]
        self.reorder_counts: dict[tuple[str, str, str], list[int]] = {}
        # (ckind, cname, pkind, pname) → [pairs, n1, n5, n10, n20]
        self.merge_counts: dict[tuple[str, str, str, str], list[int]] = {}
        # ((pkind, pname), (ckind, cname)) → count, sync-unfiltered
        self.direct_edges: dict[tuple[tuple[str, str], tuple[str, str]], int] = {}
        self.indirect_edges: dict[tuple[tuple[str, str], tuple[str, str]], int] = {}
        # Security: ecall → ocalls it nested under / ecalls seen top level.
        self.nested_under: dict[str, set[str]] = {}
        self.disqualified: set[str] = set()
        self.observed_allow: dict[str, set[str]] = {}
        self.ssc_matched = 0
        self.ssc_short = 0
        self._thread: Optional[_ThreadState] = None

    # -- folding ------------------------------------------------------------

    def fold(self, cols: CallColumns) -> None:
        """Fold one thread-major batch into the accumulators."""
        n = len(cols)
        if n == 0:
            return
        durs = cols.duration_ns()
        kinds = np.asarray(cols.kind, dtype=object)
        is_ecall = kinds == ECALL
        w = self.weights
        self.ecall_rows += int(is_ecall.sum())
        self.ocall_rows += int((kinds == OCALL).sum())
        # max(d - T, 0) < t  ⇔  d < T + t  (ecall execution-time identity)
        self.ecall_short += int(
            (durs[is_ecall] < self.transition_ns + w.short_call_ns).sum()
        )
        self.ocall_short += int((durs[~is_ecall] < w.short_call_ns).sum())
        self.aex_total += int(cols.aex_count.sum())
        self._fold_sleep_matches(cols, durs)
        self._fold_groups(cols, durs)
        boundaries = np.flatnonzero(np.diff(cols.thread_id)) + 1
        for seg in np.split(np.arange(n), boundaries):
            self._fold_segment(cols, seg)

    def _fold_sleep_matches(self, cols: CallColumns, durs: np.ndarray) -> None:
        if self._sleep_ids is None:
            return
        hits = np.flatnonzero(np.isin(cols.event_id, self._sleep_ids))
        threshold = self.weights.ssc_short_sleep_ns
        for pos in hits.tolist():
            mult = self.sleep_counts[int(cols.event_id[pos])]
            self.ssc_matched += mult
            if durs[pos] < threshold:
                self.ssc_short += mult

    def _fold_groups(self, cols: CallColumns, durs: np.ndarray) -> None:
        codes, keys = cols.group_codes()
        order = np.argsort(codes, kind="stable")
        boundaries = np.flatnonzero(np.diff(codes[order])) + 1
        for bucket in np.split(order, boundaries):
            kind, name = keys[int(codes[bucket[0]])]
            group = self.groups.get((kind, name))
            if group is None:
                group = self.groups[(kind, name)] = _GroupState(kind, name)
            starts = cols.start_ns[bucket]
            ids = cols.event_id[bucket]
            d = durs[bucket]
            group.count += len(bucket)
            group.starts.append(starts)
            group.ids.append(ids)
            group.durs.append(d)
            # Earliest (start, id) row carries call_index and the group's
            # is_sync flag, matching group_indices()' first-appearance row.
            tied = bucket[starts == starts.min()]
            first = int(tied[np.argmin(cols.event_id[tied])])
            group.update_first(
                int(cols.start_ns[first]),
                int(cols.event_id[first]),
                int(cols.call_index[first]),
                bool(cols.is_sync[first]),
            )
            base = self.transition_ns if kind == ECALL else 0
            group.n1 += int((d < base + 1_000).sum())
            group.n5 += int((d < base + 5_000).sum())
            group.n10 += int((d < base + 10_000).sum())

    def _fold_segment(self, cols: CallColumns, seg: np.ndarray) -> None:
        """One contiguous same-thread run: parents, chains, window carry."""
        tid = int(cols.thread_id[seg[0]])
        state = self._thread
        if state is None or state.thread_id != tid:
            # Thread-major order: the previous thread is complete — its
            # window and chains can never be referenced again.
            state = self._thread = _ThreadState(tid)
        self._fold_direct_parents(cols, seg, state)
        self._fold_chains(cols, seg, state)
        self._advance_window(cols, seg, state)

    def _fold_direct_parents(
        self, cols: CallColumns, seg: np.ndarray, state: _ThreadState
    ) -> None:
        pids_all = cols.parent_id[seg]
        with_parent = np.flatnonzero(pids_all != NO_PARENT)
        resolved = np.zeros(len(seg), dtype=bool)
        rows: Optional[np.ndarray] = None
        if len(with_parent):
            rows_wp = seg[with_parent]
            ppos = cols.positions_of(pids_all[with_parent])
            in_chunk = ppos >= 0
            resolved[with_parent[in_chunk]] = True
            pos_ic = ppos[in_chunk]
            # Parents in earlier chunks come out of the carried window;
            # only boundary-crossing rows pay this Python loop.
            extra: list[tuple[int, int, int, int, str, str]] = []
            for j in np.flatnonzero(~in_chunk).tolist():
                pid = int(pids_all[with_parent[j]])
                entry = state.window.get(pid)
                if entry is None:
                    state.dangling.add(pid)
                else:
                    extra.append((int(with_parent[j]), int(rows_wp[j])) + entry)
            rows = np.concatenate(
                [rows_wp[in_chunk], np.array([e[1] for e in extra], dtype=np.int64)]
            )
            pstart = np.concatenate(
                [cols.start_ns[pos_ic], np.array([e[2] for e in extra], dtype=np.int64)]
            )
            pend = np.concatenate(
                [cols.end_ns[pos_ic], np.array([e[3] for e in extra], dtype=np.int64)]
            )
            pkind = np.concatenate(
                [cols.kind[pos_ic], np.array([e[4] for e in extra], dtype=object)]
            )
            pname = np.concatenate(
                [cols.name[pos_ic], np.array([e[5] for e in extra], dtype=object)]
            )
            for e in extra:
                resolved[e[0]] = True
        if rows is not None and len(rows):
            ckind = cols.kind[rows]
            cname = cols.name[rows]
            self._bump_edges(self.direct_edges, pkind, pname, ckind, cname)
            # Security sets: ecalls nested under ocalls vs anything else.
            ecall_child = ckind == ECALL
            under_ocall = ecall_child & (pkind == OCALL)
            for pair in np.unique(_join2(cname[under_ocall], pname[under_ocall])).tolist():
                child, parent = pair.split(_SEP)
                self.nested_under.setdefault(child, set()).add(parent)
                self.observed_allow.setdefault(parent, set()).add(child)
            for child in np.unique(cname[ecall_child & ~under_ocall]).tolist():
                self.disqualified.add(child)
            # Equation 2 offsets, grouped per (kind, name, parent name).
            ns = ~cols.is_sync[rows]
            if ns.any():
                rr = rows[ns]
                from_start = cols.start_ns[rr] - pstart[ns]
                from_end = pend[ns] - cols.end_ns[rr]
                keys = np.array(
                    [
                        k + _SEP + n + _SEP + p
                        for k, n, p in zip(ckind[ns], cname[ns], pname[ns])
                    ],
                    dtype=object,
                )
                uniq, inverse = np.unique(keys, return_inverse=True)
                sums = [np.bincount(inverse, minlength=len(uniq))]
                for mask in (
                    from_start <= 10_000,
                    from_start <= 20_000,
                    from_end <= 10_000,
                    from_end <= 20_000,
                ):
                    sums.append(
                        np.bincount(inverse, weights=mask, minlength=len(uniq))
                    )
                for j, key in enumerate(uniq.tolist()):
                    counts = self.reorder_counts.setdefault(
                        tuple(key.split(_SEP)), [0, 0, 0, 0, 0]
                    )
                    for slot in range(5):
                        counts[slot] += int(sums[slot][j])
        # Ecalls with no parent, a dangling parent, or an ecall parent were
        # observed outside any ocall — never private candidates.
        loose = seg[(np.asarray(cols.kind[seg], dtype=object) == ECALL) & ~resolved]
        for child in np.unique(cols.name[loose]).tolist():
            self.disqualified.add(child)

    def _fold_chains(self, cols: CallColumns, seg: np.ndarray, state: _ThreadState) -> None:
        """Figure 4 chains: consecutive same-(parent, kind) rows in (start, id) order."""
        pids = cols.parent_id[seg]
        kind_codes = np.unique(np.asarray(cols.kind[seg], dtype=object), return_inverse=True)[1]
        order = np.lexsort((cols.event_id[seg], cols.start_ns[seg], kind_codes, pids))
        srows = seg[order]
        spids = pids[order]
        scodes = kind_codes[order]
        same = np.zeros(len(seg), dtype=bool)
        if len(seg) > 1:
            same[1:] = (spids[1:] == spids[:-1]) & (scodes[1:] == scodes[:-1])
        # Links fully inside this chunk, vectorised.
        link_at = np.flatnonzero(same)
        if len(link_at):
            prev = srows[link_at - 1]
            self._add_links(
                cols, srows[link_at], cols.end_ns[prev], cols.kind[prev], cols.name[prev]
            )
        # Each key group's head may continue a chain carried from the
        # previous chunk of this thread.
        if state.chains:
            carried: list[tuple[int, int, str, str]] = []
            for i in np.flatnonzero(~same).tolist():
                row = int(srows[i])
                tail = state.chains.get((int(spids[i]), str(cols.kind[row])))
                if tail is not None:
                    carried.append((row,) + tail)
            if carried:
                self._add_links(
                    cols,
                    np.array([c[0] for c in carried], dtype=np.int64),
                    np.array([c[1] for c in carried], dtype=np.int64),
                    np.array([c[2] for c in carried], dtype=object),
                    np.array([c[3] for c in carried], dtype=object),
                )
        # Each key group's last row becomes the chain tail going forward.
        tail_at = np.flatnonzero(~np.append(same[1:], False))
        for i in tail_at.tolist():
            row = int(srows[i])
            state.chains[(int(spids[i]), str(cols.kind[row]))] = (
                int(cols.end_ns[row]),
                str(cols.kind[row]),
                str(cols.name[row]),
            )

    def _add_links(
        self,
        cols: CallColumns,
        rows: np.ndarray,
        pend: np.ndarray,
        pkind: np.ndarray,
        pname: np.ndarray,
    ) -> None:
        ckind = cols.kind[rows]
        cname = cols.name[rows]
        self._bump_edges(self.indirect_edges, pkind, pname, ckind, cname)
        ns = ~cols.is_sync[rows]  # Equation 3 filters sync *children* only
        if not ns.any():
            return
        gaps = cols.start_ns[rows[ns]] - pend[ns]
        keys = _join4(ckind[ns], cname[ns], pkind[ns], pname[ns])
        uniq, inverse = np.unique(keys, return_inverse=True)
        sums = [np.bincount(inverse, minlength=len(uniq))]
        for limit in (1_000, 5_000, 10_000, 20_000):
            sums.append(np.bincount(inverse, weights=gaps <= limit, minlength=len(uniq)))
        for j, key in enumerate(uniq.tolist()):
            counts = self.merge_counts.setdefault(tuple(key.split(_SEP)), [0, 0, 0, 0, 0])
            for slot in range(5):
                counts[slot] += int(sums[slot][j])

    @staticmethod
    def _bump_edges(
        edges: dict,
        pkind: np.ndarray,
        pname: np.ndarray,
        ckind: np.ndarray,
        cname: np.ndarray,
    ) -> None:
        if len(pkind) == 0:
            return
        uniq, counts = np.unique(_join4(pkind, pname, ckind, cname), return_counts=True)
        for key, count in zip(uniq.tolist(), counts.tolist()):
            pk, pn, ck, cn = key.split(_SEP)
            edge = ((pk, pn), (ck, cn))
            edges[edge] = edges.get(edge, 0) + int(count)

    def _advance_window(self, cols: CallColumns, seg: np.ndarray, state: _ThreadState) -> None:
        """Carry only still-open intervals; evict chains of closed parents.

        Same-chunk parents resolve through ``positions_of``, so the carry
        window only needs rows whose interval reaches past the segment's
        last start — the calls still open at the chunk boundary.
        """
        last_start = int(cols.start_ns[seg[-1]])
        for pid in [k for k, v in state.window.items() if v[1] < last_start]:
            del state.window[pid]
        still_open = seg[cols.end_ns[seg] >= last_start]
        for row in still_open.tolist():
            state.window[int(cols.event_id[row])] = (
                int(cols.start_ns[row]),
                int(cols.end_ns[row]),
                str(cols.kind[row]),
                str(cols.name[row]),
            )
        # A chain whose parent call has closed can never grow again; only
        # open parents, top-level chains and dangling ids stay live.
        dead = [
            key
            for key in state.chains
            if key[0] != NO_PARENT
            and key[0] not in state.window
            and key[0] not in state.dangling
        ]
        for key in dead:
            del state.chains[key]

    # -- sharding ------------------------------------------------------------

    def seal(self) -> "CallFold":
        """Drop transient per-thread state (end of a shard's thread run)."""
        self._thread = None
        self._sleep_ids = None
        return self

    def merge(self, other: "CallFold") -> None:
        """Fold another shard's sealed state into this one (commutative)."""
        for key, group in other.groups.items():
            mine = self.groups.get(key)
            if mine is None:
                self.groups[key] = group
            else:
                mine.merge(group)
        self.ecall_rows += other.ecall_rows
        self.ocall_rows += other.ocall_rows
        self.ecall_short += other.ecall_short
        self.ocall_short += other.ocall_short
        self.aex_total += other.aex_total
        self.ssc_matched += other.ssc_matched
        self.ssc_short += other.ssc_short
        for table, theirs in (
            (self.reorder_counts, other.reorder_counts),
            (self.merge_counts, other.merge_counts),
        ):
            for key, counts in theirs.items():
                mine = table.get(key)
                if mine is None:
                    table[key] = counts
                else:
                    for i, c in enumerate(counts):
                        mine[i] += c
        for edges, theirs in (
            (self.direct_edges, other.direct_edges),
            (self.indirect_edges, other.indirect_edges),
        ):
            for key, count in theirs.items():
                edges[key] = edges.get(key, 0) + count
        for name, parents in other.nested_under.items():
            self.nested_under.setdefault(name, set()).update(parents)
        for name, children in other.observed_allow.items():
            self.observed_allow.setdefault(name, set()).update(children)
        self.disqualified.update(other.disqualified)

    # -- finalisation --------------------------------------------------------

    def _ordered_groups(self) -> list[_GroupState]:
        """Groups in global first-appearance order (min ``(start, id)``)."""
        return sorted(self.groups.values(), key=lambda g: (g.first_start, g.first_id))

    def statistics(self) -> list[stats_mod.CallStatistics]:
        """Per-call statistics, busiest first — ``all_statistics``'s twin."""
        stats = [
            stats_mod._statistics_from_values(g.kind, g.name, g.sorted_durations())
            for g in self._ordered_groups()
        ]
        stats.sort(key=lambda s: s.total_ns, reverse=True)
        return stats

    def move_findings(self) -> list[det.Finding]:
        findings = []
        for key in sorted(self.groups):
            g = self.groups[key]
            if g.is_sync_first or g.count < self.weights.min_calls:
                continue
            finding = det.move_finding_from_counts(
                g.kind, g.name, g.count, g.n1, g.n5, g.n10, self.weights
            )
            if finding is not None:
                findings.append(finding)
        return findings

    def reorder_findings(self) -> list[det.Finding]:
        findings = []
        for key in sorted(self.reorder_counts):
            total, s10, s20, e10, e20 = self.reorder_counts[key]
            if total < self.weights.min_calls:
                continue
            finding = det.reorder_finding_from_counts(
                key[0], key[1], key[2], total, s10, s20, e10, e20, self.weights
            )
            if finding is not None:
                findings.append(finding)
        return findings

    def merge_findings(self) -> list[det.Finding]:
        findings = []
        for key in sorted(self.merge_counts):
            pairs, n1, n5, n10, n20 = self.merge_counts[key]
            ck, cn, pk, pn = key
            finding = det.merge_finding_from_counts(
                (ck, cn),
                (pk, pn),
                pairs,
                n1,
                n5,
                n10,
                n20,
                self.groups[(ck, cn)].count,
                self.groups[(pk, pn)].count,
                self.weights,
            )
            if finding is not None:
                findings.append(finding)
        return findings

    def security_findings(self, definition) -> list[det.Finding]:
        findings = sec.private_ecall_findings_from_sets(
            self.nested_under, self.disqualified
        )
        findings += sec.allowlist_findings_from_observed(self.observed_allow, definition)
        if definition is not None:
            counts = {key: g.count for key, g in self.groups.items()}
            findings += sec.user_check_findings_from_counts(definition, counts)
        return findings

    def call_graph(self) -> nx.MultiDiGraph:
        """Name-level call graph — ``build_call_graph``'s aggregate twin."""
        graph = nx.MultiDiGraph()
        for g in self._ordered_groups():
            graph.add_node(
                f"{g.kind}:{g.name}",
                name=g.name,
                kind=g.kind,
                call_index=g.call_index,
                count=g.count,
            )
        for edges, relation in (
            (self.direct_edges, callgraph_mod.DIRECT),
            (self.indirect_edges, callgraph_mod.INDIRECT),
        ):
            for (src, dst), count in sorted(edges.items()):
                graph.add_edge(
                    f"{src[0]}:{src[1]}",
                    f"{dst[0]}:{dst[1]}",
                    key=relation,
                    relation=relation,
                    count=count,
                )
        return graph

    def distinct_counts(self) -> tuple[int, int]:
        """(distinct ecall names, distinct ocall names)."""
        ecalls = sum(1 for kind, _ in self.groups if kind == ECALL)
        return ecalls, len(self.groups) - ecalls


class StreamingAnalyzer:
    """The streaming analyser: same report as :class:`~repro.perf.analysis.report.Analyzer`, windowed memory.

    Runs four passes over the trace database:

    1. a *sync* pass over the (small) sync table, producing the sleep
       multiplicities and wake matrix the SSC detector needs;
    2. the *call fold* — :class:`CallFold` over thread-major column
       chunks, optionally sharded by thread across worker processes
       (``jobs > 1``, see :mod:`repro.perf.analysis.parallel`);
    3. a *paging* pass merge-joining time-ordered paging records against
       time-ordered ecall intervals (equivalent to the in-memory
       ``searchsorted`` attribution);
    4. a *fault* pass folding fault rows through the shared
       :class:`~repro.perf.analysis.report.FaultAccumulator`.

    The resulting :class:`~repro.perf.analysis.report.AnalysisReport` is
    byte-identical to the in-memory analyser's for any chunk size or job
    count — the equivalence tests and the CI digest gate hold it to that.
    """

    def __init__(
        self,
        database,
        definition=None,
        weights: Optional[det.AnalyzerWeights] = None,
        chunk_events: Optional[int] = None,
        jobs: int = 1,
    ) -> None:
        from repro.perf.database import DEFAULT_CHUNK_EVENTS

        self.db = database
        self.definition = definition
        self.weights = weights or det.AnalyzerWeights()
        self.chunk_events = int(chunk_events or DEFAULT_CHUNK_EVENTS)
        self.jobs = int(jobs)

    def run(self):
        from repro.perf.analysis import report as report_mod

        db = self.db
        counts = db.table_counts()
        trace_state = db.get_meta("trace_state")
        transition_ns = int(
            db.get_meta(
                "transition_round_trip_ns", str(report_mod.DEFAULT_TRANSITION_NS)
            )
        )
        sync = self._sync_pass()
        fold = self._fold_trace(transition_ns, sync["sleep_counts"])
        self._fold = fold  # kept for `call_graph()` / live inspection

        findings: list[det.Finding] = []
        findings += fold.reorder_findings()
        findings += fold.merge_findings()
        findings += fold.move_findings()
        findings += det.ssc_finding_from_counts(
            sync["total"],
            sync["sleeps"],
            sync["wakes"],
            fold.ssc_matched,
            fold.ssc_short,
            sync["wake_matrix"],
            self.weights,
        )
        findings += det.paging_findings_from_counts(*self._paging_pass())
        findings += fold.security_findings(self.definition)

        distinct_ecalls, distinct_ocalls = fold.distinct_counts()
        report = report_mod.AnalysisReport(
            statistics=fold.statistics(),
            findings=findings,
            transition_round_trip_ns=transition_ns,
            ecall_count=fold.ecall_rows,
            ocall_count=fold.ocall_rows,
            ecall_short_fraction=(
                fold.ecall_short / fold.ecall_rows if fold.ecall_rows else 0.0
            ),
            ocall_short_fraction=(
                fold.ocall_short / fold.ocall_rows if fold.ocall_rows else 0.0
            ),
            distinct_ecalls=distinct_ecalls,
            distinct_ocalls=distinct_ocalls,
            aex_total=fold.aex_total,
            paging_events=counts["paging"],
        )
        fault_acc = report_mod.FaultAccumulator()
        for chunk in db.fault_events_chunks(self.chunk_events):
            for fault in chunk:
                fault_acc.add(fault)
        report_mod.apply_fault_annotations(report, fault_acc, trace_state)
        report_mod.apply_edl_note(report, self.definition)
        return report

    def call_graph(self) -> nx.MultiDiGraph:
        """Call graph from the last :meth:`run`'s fold (runs one if needed)."""
        if not hasattr(self, "_fold"):
            self.run()
        return self._fold.call_graph()

    # -- passes --------------------------------------------------------------

    def _sync_pass(self) -> dict:
        """Sleep multiplicities, wake matrix and sync totals (one pass)."""
        from repro.perf.events import SyncKind

        total = sleeps = wakes = 0
        sleep_counts: dict[int, int] = {}
        wake_matrix: dict[tuple[int, int], int] = {}
        for rows in self.db.sync_rows_chunks(self.chunk_events):
            for row in rows:
                total += 1
                kind = row[3]
                if kind == SyncKind.SLEEP.value:
                    sleeps += 1
                    if row[4] is not None:
                        call_id = int(row[4])
                        sleep_counts[call_id] = sleep_counts.get(call_id, 0) + 1
                elif kind == SyncKind.WAKE.value:
                    wakes += 1
                    thread_id = int(row[2])
                    for target in (row[5] or "").split(","):
                        if target:
                            key = (thread_id, int(target))
                            wake_matrix[key] = wake_matrix.get(key, 0) + 1
        return {
            "total": total,
            "sleeps": sleeps,
            "wakes": wakes,
            "sleep_counts": sleep_counts,
            "wake_matrix": wake_matrix,
        }

    def _fold_trace(self, transition_ns: int, sleep_counts: dict[int, int]) -> CallFold:
        if self.jobs > 1 and self.db.path != ":memory:":
            from repro.perf.analysis.parallel import parallel_fold

            fold = parallel_fold(
                self.db,
                transition_ns,
                self.weights,
                sleep_counts,
                jobs=self.jobs,
                chunk_events=self.chunk_events,
            )
            if fold is not None:
                return fold
        fold = CallFold(transition_ns, self.weights, sleep_counts)
        for cols in self.db.call_columns_chunks(self.chunk_events, order="thread"):
            fold.fold(cols)
        return fold.seal()

    def _paging_pass(self) -> tuple[dict[str, int], int, int, int]:
        """Attribute paging events to enclosing ecalls via a merge-join.

        Both streams are time-ordered, so "the last ecall started at or
        before the fault's timestamp" is a single forward pointer — the
        exact interval ``searchsorted(..., side="right") - 1`` selects in
        the in-memory detector, including its last-of-tied-starts choice.
        """
        page_in = total = 0
        distinct: set[tuple[int, int]] = set()
        affected: dict[str, int] = {}

        def intervals():
            for rows in self.db.ecall_intervals_chunks(self.chunk_events):
                yield from rows

        ecalls = intervals()
        upcoming = next(ecalls, None)
        current = None  # last interval started at or before the fault
        for rows in self.db.paging_rows_chunks(self.chunk_events):
            for row in rows:
                ts = int(row[1])
                total += 1
                if row[4] == "page_in":
                    page_in += 1
                distinct.add((int(row[2]), int(row[3])))
                while upcoming is not None and upcoming[0] <= ts:
                    current = upcoming
                    upcoming = next(ecalls, None)
                if current is not None and current[1] >= ts:
                    name = str(current[2])
                    affected[name] = affected.get(name, 0) + 1
        return affected, page_in, total - page_in, len(distinct)
