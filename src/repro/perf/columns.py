"""Columnar view of the ``calls`` table.

The paper's analyses are all aggregations — fractions of short calls,
percentile tables, gap distributions (§4.3).  Inflating one
:class:`~repro.perf.events.CallEvent` dataclass per row just to feed NumPy
made the million-event traces (§5.2.4 records 1.1M ecall events)
analysis-bound in Python.  :class:`CallColumns` keeps the whole table as
eleven NumPy arrays instead; the analysers index and mask them directly.

``parent_id`` uses ``-1`` as the *no parent* sentinel (SQL ``NULL``), so
every column stays a dense integer array.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

from repro.perf.events import CallEvent

NO_PARENT = -1

# Column order mirrors the ``calls`` table schema.
CALL_COLUMN_NAMES = (
    "event_id",
    "kind",
    "name",
    "call_index",
    "enclave_id",
    "thread_id",
    "start_ns",
    "end_ns",
    "aex_count",
    "parent_id",
    "is_sync",
)


class CallColumns:
    """All call events of a trace, column-wise.

    ``kind`` and ``name`` are object arrays of strings; every other column
    is ``int64`` except ``is_sync`` (bool).  Rows keep the reader-side
    ordering convention: ``(start_ns, event_id)`` ascending.
    """

    __slots__ = CALL_COLUMN_NAMES + ("_id_order", "_group_cache")

    def __init__(
        self,
        event_id: np.ndarray,
        kind: np.ndarray,
        name: np.ndarray,
        call_index: np.ndarray,
        enclave_id: np.ndarray,
        thread_id: np.ndarray,
        start_ns: np.ndarray,
        end_ns: np.ndarray,
        aex_count: np.ndarray,
        parent_id: np.ndarray,
        is_sync: np.ndarray,
    ) -> None:
        self.event_id = event_id
        self.kind = kind
        self.name = name
        self.call_index = call_index
        self.enclave_id = enclave_id
        self.thread_id = thread_id
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.aex_count = aex_count
        self.parent_id = parent_id
        self.is_sync = is_sync
        self._id_order: Optional[tuple[np.ndarray, np.ndarray]] = None
        self._group_cache: Optional[list[tuple[tuple[str, str], np.ndarray]]] = None

    # -- construction --------------------------------------------------------

    @classmethod
    def from_rows(cls, rows: Sequence[tuple]) -> "CallColumns":
        """Build from database rows (``calls`` schema order)."""
        n = len(rows)
        if n == 0:
            return cls.empty()
        cols = list(zip(*rows))
        return cls(
            event_id=np.fromiter(cols[0], dtype=np.int64, count=n),
            kind=np.array(cols[1], dtype=object),
            name=np.array(cols[2], dtype=object),
            call_index=np.fromiter(cols[3], dtype=np.int64, count=n),
            enclave_id=np.fromiter(cols[4], dtype=np.int64, count=n),
            thread_id=np.fromiter(cols[5], dtype=np.int64, count=n),
            start_ns=np.fromiter(cols[6], dtype=np.int64, count=n),
            end_ns=np.fromiter(cols[7], dtype=np.int64, count=n),
            aex_count=np.fromiter(cols[8], dtype=np.int64, count=n),
            parent_id=np.fromiter(
                (NO_PARENT if p is None else p for p in cols[9]),
                dtype=np.int64,
                count=n,
            ),
            is_sync=np.fromiter(cols[10], dtype=bool, count=n),
        )

    @classmethod
    def from_events(cls, events: Iterable[CallEvent]) -> "CallColumns":
        """Build from reader-side :class:`CallEvent` objects."""
        return cls.from_rows([_event_row(e) for e in events])

    @classmethod
    def empty(cls) -> "CallColumns":
        """A zero-row column set."""
        i64 = np.empty(0, dtype=np.int64)
        return cls(
            event_id=i64,
            kind=np.empty(0, dtype=object),
            name=np.empty(0, dtype=object),
            call_index=i64,
            enclave_id=i64,
            thread_id=i64,
            start_ns=i64,
            end_ns=i64,
            aex_count=i64,
            parent_id=i64,
            is_sync=np.empty(0, dtype=bool),
        )

    # -- basics --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.event_id)

    def duration_ns(self) -> np.ndarray:
        """Measured durations, logger convention (``end - start``)."""
        return self.end_ns - self.start_ns

    def select(self, mask_or_indices: np.ndarray) -> "CallColumns":
        """A new column set restricted to ``mask_or_indices``."""
        m = mask_or_indices
        return CallColumns(
            event_id=self.event_id[m],
            kind=self.kind[m],
            name=self.name[m],
            call_index=self.call_index[m],
            enclave_id=self.enclave_id[m],
            thread_id=self.thread_id[m],
            start_ns=self.start_ns[m],
            end_ns=self.end_ns[m],
            aex_count=self.aex_count[m],
            parent_id=self.parent_id[m],
            is_sync=self.is_sync[m],
        )

    def event(self, position: int) -> CallEvent:
        """Inflate the row at ``position`` into a :class:`CallEvent`."""
        parent = int(self.parent_id[position])
        return CallEvent(
            event_id=int(self.event_id[position]),
            kind=str(self.kind[position]),
            name=str(self.name[position]),
            call_index=int(self.call_index[position]),
            enclave_id=int(self.enclave_id[position]),
            thread_id=int(self.thread_id[position]),
            start_ns=int(self.start_ns[position]),
            end_ns=int(self.end_ns[position]),
            aex_count=int(self.aex_count[position]),
            parent_id=None if parent == NO_PARENT else parent,
            is_sync=bool(self.is_sync[position]),
        )

    def to_events(self) -> list[CallEvent]:
        """Inflate every row (compatibility escape hatch — avoid in hot paths)."""
        return [self.event(i) for i in range(len(self))]

    # -- id lookups ----------------------------------------------------------

    def positions_of(self, ids: np.ndarray) -> np.ndarray:
        """Row positions of ``ids`` (``-1`` where absent or ``NO_PARENT``)."""
        if len(self) == 0:
            return np.full(len(ids), -1, dtype=np.int64)
        if self._id_order is None:
            order = np.argsort(self.event_id, kind="stable")
            self._id_order = (order, self.event_id[order])
        order, sorted_ids = self._id_order
        pos = np.searchsorted(sorted_ids, ids)
        pos_clipped = np.minimum(pos, len(sorted_ids) - 1)
        found = sorted_ids[pos_clipped] == ids
        return np.where(found, order[pos_clipped], np.int64(-1))

    # -- grouping ------------------------------------------------------------

    def group_indices(self) -> list[tuple[tuple[str, str], np.ndarray]]:
        """``((kind, name), row indices)`` per distinct call, in
        first-appearance order (matching dict-insertion semantics of the
        event-based grouping)."""
        if self._group_cache is not None:
            return self._group_cache
        if len(self) == 0:
            self._group_cache = []
            return self._group_cache
        codes, keys = self.group_codes()
        order = np.argsort(codes, kind="stable")
        boundaries = np.flatnonzero(np.diff(codes[order])) + 1
        # Stable argsort keeps original order within a group, so bucket[0]
        # is each group's first appearance in the trace.
        buckets = sorted(np.split(order, boundaries), key=lambda b: int(b[0]))
        self._group_cache = [(keys[int(codes[b[0]])], b) for b in buckets]
        return self._group_cache

    def group_codes(self) -> tuple[np.ndarray, list[tuple[str, str]]]:
        """Per-row group code and the code → ``(kind, name)`` table."""
        combined = np.array(
            [k + "\x00" + n for k, n in zip(self.kind, self.name)], dtype=object
        )
        uniq, inverse = np.unique(combined, return_inverse=True)
        keys = [tuple(u.split("\x00", 1)) for u in uniq]
        return inverse.astype(np.int64), keys


def _event_row(e: CallEvent) -> tuple:
    return (
        e.event_id,
        e.kind,
        e.name,
        e.call_index,
        e.enclave_id,
        e.thread_id,
        e.start_ns,
        e.end_ns,
        e.aex_count,
        e.parent_id,
        1 if e.is_sync else 0,
    )


def as_columns(calls: Union["CallColumns", Iterable[CallEvent]]) -> CallColumns:
    """Coerce either representation to columns.

    Analysis entry points accept both the legacy ``Sequence[CallEvent]``
    and :class:`CallColumns`; the columnar form is the fast path.
    """
    if isinstance(calls, CallColumns):
        return calls
    return CallColumns.from_events(calls)
