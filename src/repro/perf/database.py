"""SQLite trace store.

"All events are serialised to a SQLite database.  This makes it possible to
analyse the data with other tools without having to implement parsing of
the data." (paper §4).  The writer buffers rows and flushes in batches; the
reader exposes typed records for the analyser and raw SQL for everyone
else.
"""

from __future__ import annotations

import sqlite3
from typing import Iterable, Optional

from repro.perf.events import (
    AexEvent,
    CallEvent,
    EnclaveRecord,
    PagingRecord,
    SyncEvent,
    SyncKind,
    ThreadRecord,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS calls (
    id INTEGER PRIMARY KEY,
    kind TEXT NOT NULL,
    name TEXT NOT NULL,
    call_index INTEGER NOT NULL,
    enclave_id INTEGER NOT NULL,
    thread_id INTEGER NOT NULL,
    start_ns INTEGER NOT NULL,
    end_ns INTEGER NOT NULL,
    aex_count INTEGER NOT NULL DEFAULT 0,
    parent_id INTEGER,
    is_sync INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS aex (
    id INTEGER PRIMARY KEY,
    ts_ns INTEGER NOT NULL,
    enclave_id INTEGER NOT NULL,
    thread_id INTEGER NOT NULL,
    call_id INTEGER
);
CREATE TABLE IF NOT EXISTS paging (
    id INTEGER PRIMARY KEY,
    ts_ns INTEGER NOT NULL,
    enclave_id INTEGER NOT NULL,
    vaddr INTEGER NOT NULL,
    direction TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS sync (
    id INTEGER PRIMARY KEY,
    ts_ns INTEGER NOT NULL,
    thread_id INTEGER NOT NULL,
    kind TEXT NOT NULL,
    call_id INTEGER NOT NULL,
    targets TEXT NOT NULL DEFAULT ''
);
CREATE TABLE IF NOT EXISTS threads (
    thread_id INTEGER PRIMARY KEY,
    name TEXT NOT NULL,
    created_ns INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS enclaves (
    enclave_id INTEGER PRIMARY KEY,
    name TEXT NOT NULL,
    size_pages INTEGER NOT NULL,
    tcs_count INTEGER NOT NULL,
    base_vaddr INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_calls_name ON calls(kind, name);
CREATE INDEX IF NOT EXISTS idx_calls_thread ON calls(thread_id, start_ns);
"""

_FLUSH_THRESHOLD = 4096


class TraceDatabase:
    """Writer/reader for an sgx-perf trace.

    Use as a context manager or call :meth:`close` to flush buffered rows.
    A path of ``":memory:"`` keeps the trace in RAM (handy for tests).
    """

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        # Simulated threads are backed by OS threads, but the cooperative
        # scheduler guarantees only one runs at a time — cross-thread use
        # of the connection is serialised by construction.
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.executescript(_SCHEMA)
        self._calls: list[tuple] = []
        self._aex: list[tuple] = []
        self._paging: list[tuple] = []
        self._sync: list[tuple] = []
        self._closed = False

    # -- writer side ---------------------------------------------------------

    def set_meta(self, key: str, value: str) -> None:
        """Store one key/value metadata pair (patch level, frequency, ...)."""
        self._conn.execute(
            "INSERT OR REPLACE INTO meta(key, value) VALUES (?, ?)", (key, str(value))
        )

    def add_call(self, event: CallEvent) -> None:
        """Buffer one completed call event."""
        self._calls.append(
            (
                event.event_id,
                event.kind,
                event.name,
                event.call_index,
                event.enclave_id,
                event.thread_id,
                event.start_ns,
                event.end_ns,
                event.aex_count,
                event.parent_id,
                1 if event.is_sync else 0,
            )
        )
        if len(self._calls) >= _FLUSH_THRESHOLD:
            self.flush()

    def add_aex(self, event: AexEvent) -> None:
        """Buffer one traced AEX."""
        self._aex.append(
            (
                event.event_id,
                event.timestamp_ns,
                event.enclave_id,
                event.thread_id,
                event.call_id,
            )
        )

    def add_paging(self, record: PagingRecord) -> None:
        """Buffer one paging event."""
        self._paging.append(
            (
                record.event_id,
                record.timestamp_ns,
                record.enclave_id,
                record.vaddr,
                record.direction,
            )
        )

    def add_sync(self, event: SyncEvent) -> None:
        """Buffer one sync sleep/wake event."""
        self._sync.append(
            (
                event.event_id,
                event.timestamp_ns,
                event.thread_id,
                event.kind.value,
                event.call_id,
                ",".join(str(t) for t in event.targets),
            )
        )

    def add_thread(self, record: ThreadRecord) -> None:
        """Record one observed thread."""
        self._conn.execute(
            "INSERT OR REPLACE INTO threads(thread_id, name, created_ns) VALUES (?,?,?)",
            (record.thread_id, record.name, record.created_ns),
        )

    def add_enclave(self, record: EnclaveRecord) -> None:
        """Record one enclave's static facts."""
        self._conn.execute(
            "INSERT OR REPLACE INTO enclaves"
            "(enclave_id, name, size_pages, tcs_count, base_vaddr) VALUES (?,?,?,?,?)",
            (
                record.enclave_id,
                record.name,
                record.size_pages,
                record.tcs_count,
                record.base_vaddr,
            ),
        )

    def flush(self) -> None:
        """Write buffered rows to the database."""
        if self._calls:
            self._conn.executemany(
                "INSERT INTO calls VALUES (?,?,?,?,?,?,?,?,?,?,?)", self._calls
            )
            self._calls.clear()
        if self._aex:
            self._conn.executemany("INSERT INTO aex VALUES (?,?,?,?,?)", self._aex)
            self._aex.clear()
        if self._paging:
            self._conn.executemany("INSERT INTO paging VALUES (?,?,?,?,?)", self._paging)
            self._paging.clear()
        if self._sync:
            self._conn.executemany("INSERT INTO sync VALUES (?,?,?,?,?,?)", self._sync)
            self._sync.clear()
        self._conn.commit()

    def close(self) -> None:
        """Flush and close the underlying connection."""
        if not self._closed:
            self.flush()
            self._conn.close()
            self._closed = True

    def __enter__(self) -> "TraceDatabase":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reader side ---------------------------------------------------------------

    def get_meta(self, key: str, default: Optional[str] = None) -> Optional[str]:
        """Fetch one metadata value."""
        row = self._conn.execute("SELECT value FROM meta WHERE key = ?", (key,)).fetchone()
        return row[0] if row else default

    def calls(
        self,
        kind: Optional[str] = None,
        name: Optional[str] = None,
        enclave_id: Optional[int] = None,
    ) -> list[CallEvent]:
        """Load call events, optionally filtered, ordered by start time."""
        self.flush()
        query = "SELECT * FROM calls"
        clauses, params = [], []
        if kind is not None:
            clauses.append("kind = ?")
            params.append(kind)
        if name is not None:
            clauses.append("name = ?")
            params.append(name)
        if enclave_id is not None:
            clauses.append("enclave_id = ?")
            params.append(enclave_id)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY start_ns, id"
        rows = self._conn.execute(query, params).fetchall()
        return [
            CallEvent(
                event_id=r[0],
                kind=r[1],
                name=r[2],
                call_index=r[3],
                enclave_id=r[4],
                thread_id=r[5],
                start_ns=r[6],
                end_ns=r[7],
                aex_count=r[8],
                parent_id=r[9],
                is_sync=bool(r[10]),
            )
            for r in rows
        ]

    def aex_events(self) -> list[AexEvent]:
        """Load all traced AEX events."""
        self.flush()
        rows = self._conn.execute("SELECT * FROM aex ORDER BY ts_ns").fetchall()
        return [AexEvent(*r) for r in rows]

    def paging_events(self) -> list[PagingRecord]:
        """Load all paging events."""
        self.flush()
        rows = self._conn.execute("SELECT * FROM paging ORDER BY ts_ns").fetchall()
        return [PagingRecord(*r) for r in rows]

    def sync_events(self) -> list[SyncEvent]:
        """Load all sync sleep/wake events."""
        self.flush()
        rows = self._conn.execute("SELECT * FROM sync ORDER BY ts_ns").fetchall()
        return [
            SyncEvent(
                event_id=r[0],
                timestamp_ns=r[1],
                thread_id=r[2],
                kind=SyncKind(r[3]),
                call_id=r[4],
                targets=tuple(int(t) for t in r[5].split(",") if t),
            )
            for r in rows
        ]

    def threads(self) -> list[ThreadRecord]:
        """Load observed threads."""
        self.flush()
        rows = self._conn.execute("SELECT * FROM threads ORDER BY thread_id").fetchall()
        return [ThreadRecord(*r) for r in rows]

    def enclaves(self) -> list[EnclaveRecord]:
        """Load enclave records."""
        self.flush()
        rows = self._conn.execute("SELECT * FROM enclaves ORDER BY enclave_id").fetchall()
        return [EnclaveRecord(*r) for r in rows]

    def execute(self, sql: str, params: Iterable = ()) -> list[tuple]:
        """Run raw SQL against the trace — the 'other tools' escape hatch."""
        self.flush()
        return self._conn.execute(sql, tuple(params)).fetchall()
