"""SQLite trace store.

"All events are serialised to a SQLite database.  This makes it possible to
analyse the data with other tools without having to implement parsing of
the data." (paper §4).

The writer is tuned for trace recording (§4.1's "keep the hot path cheap,
serialise off the critical path" design applied to the store itself):

* rows arrive as **flat tuples** in schema order (``add_*_row``) or in bulk
  (``add_call_rows`` et al.) — the dataclass-taking ``add_*`` methods
  remain as thin compatibility shims;
* buffered rows flush **one transaction per batch** via ``executemany``,
  with a uniform per-table flush threshold (calls, aex, paging *and* sync);
* recording pragmas: WAL journaling (file-backed traces),
  ``synchronous=OFF``, in-memory temp store and a larger page cache — a
  crashed trace run is worthless anyway, so durability is traded for speed;
* index creation is **deferred until first read** (bulk-load then index):
  inserts never pay index maintenance while the logger is recording.

The reader side exposes typed records for compatibility, a **columnar API**
(:meth:`call_columns`, :meth:`durations_ns`, :meth:`starts_ns`,
:meth:`call_summary`) returning NumPy arrays straight from SQL for the
analysers, and raw SQL for everyone else.

For traces too large to materialise, the **streaming API** walks the same
tables through SQLite cursors in bounded-size batches:
:meth:`call_columns_chunks` yields :class:`CallColumns` windows (ordered by
``(thread, start, id)`` so per-thread parent state stays windowed, or
globally by ``(start, id)``), with row-count fast paths
(:meth:`calls_count`, :meth:`event_count`) that never load a column.
``readonly=True`` opens an existing trace without taking any write lock —
the mode the parallel analyser's shard workers use so N readers never
contend on index creation.
"""

from __future__ import annotations

import os
import sqlite3
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.perf.columns import CallColumns
from repro.perf.events import (
    ECALL,
    OCALL,
    AexEvent,
    CallEvent,
    EnclaveRecord,
    FaultRecord,
    PagingRecord,
    SyncEvent,
    SyncKind,
    ThreadRecord,
)

# Name given to calls synthesised by salvage for ids the crashed logger
# never flushed (their real names died with the in-memory frames).
TRUNCATED_CALL_NAME = "<truncated>"


class TraceError(RuntimeError):
    """A trace database used in a way that would corrupt it.

    The canonical case: a ``TraceDatabase`` carried across ``fork()`` into a
    child process.  SQLite connections must not be shared across processes —
    the sweep engine gives every worker its own store; anything else gets
    this error instead of silent corruption.
    """

_SCHEMA_TABLES = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS calls (
    id INTEGER PRIMARY KEY,
    kind TEXT NOT NULL,
    name TEXT NOT NULL,
    call_index INTEGER NOT NULL,
    enclave_id INTEGER NOT NULL,
    thread_id INTEGER NOT NULL,
    start_ns INTEGER NOT NULL,
    end_ns INTEGER NOT NULL,
    aex_count INTEGER NOT NULL DEFAULT 0,
    parent_id INTEGER,
    is_sync INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS aex (
    id INTEGER PRIMARY KEY,
    ts_ns INTEGER NOT NULL,
    enclave_id INTEGER NOT NULL,
    thread_id INTEGER NOT NULL,
    call_id INTEGER
);
CREATE TABLE IF NOT EXISTS paging (
    id INTEGER PRIMARY KEY,
    ts_ns INTEGER NOT NULL,
    enclave_id INTEGER NOT NULL,
    vaddr INTEGER NOT NULL,
    direction TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS sync (
    id INTEGER PRIMARY KEY,
    ts_ns INTEGER NOT NULL,
    thread_id INTEGER NOT NULL,
    kind TEXT NOT NULL,
    call_id INTEGER NOT NULL,
    targets TEXT NOT NULL DEFAULT ''
);
CREATE TABLE IF NOT EXISTS faults (
    id INTEGER PRIMARY KEY,
    ts_ns INTEGER NOT NULL,
    enclave_id INTEGER NOT NULL DEFAULT 0,
    thread_id INTEGER NOT NULL DEFAULT 0,
    kind TEXT NOT NULL,
    call TEXT NOT NULL DEFAULT '',
    detail TEXT NOT NULL DEFAULT ''
);
CREATE TABLE IF NOT EXISTS threads (
    thread_id INTEGER PRIMARY KEY,
    name TEXT NOT NULL,
    created_ns INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS enclaves (
    enclave_id INTEGER PRIMARY KEY,
    name TEXT NOT NULL,
    size_pages INTEGER NOT NULL,
    tcs_count INTEGER NOT NULL,
    base_vaddr INTEGER NOT NULL
);
"""

_SCHEMA_INDEXES = """
CREATE INDEX IF NOT EXISTS idx_calls_name ON calls(kind, name);
CREATE INDEX IF NOT EXISTS idx_calls_thread ON calls(thread_id, start_ns);
"""

_INSERT_CALLS = "INSERT INTO calls VALUES (?,?,?,?,?,?,?,?,?,?,?)"
_INSERT_AEX = "INSERT INTO aex VALUES (?,?,?,?,?)"
_INSERT_PAGING = "INSERT INTO paging VALUES (?,?,?,?,?)"
_INSERT_SYNC = "INSERT INTO sync VALUES (?,?,?,?,?,?)"
_INSERT_FAULTS = "INSERT INTO faults VALUES (?,?,?,?,?,?,?)"

_FLUSH_THRESHOLD = 4096

# Default streaming batch: large enough to amortise per-chunk Python and
# NumPy overheads, small enough that a window of one chunk stays in cache.
DEFAULT_CHUNK_EVENTS = 65_536


@dataclass(frozen=True)
class CallSummary:
    """One ``call_summary()`` row: per-(kind, name) aggregates from SQL."""

    kind: str
    name: str
    count: int
    total_ns: int
    min_ns: int
    max_ns: int

    @property
    def mean_ns(self) -> float:
        """Average measured duration."""
        return self.total_ns / self.count if self.count else 0.0


class TraceDatabase:
    """Writer/reader for an sgx-perf trace.

    Use as a context manager or call :meth:`close` to flush buffered rows.
    A path of ``":memory:"`` keeps the trace in RAM (handy for tests).

    ``tuned=False`` skips the recording pragmas; ``defer_indexes=False``
    creates the read indexes eagerly (the seed writer's behaviour, kept for
    apples-to-apples comparisons).  ``readonly=True`` opens an existing
    file-backed trace through SQLite's read-only URI mode: no schema or
    index creation, no pragma writes — many processes can read the same
    trace concurrently without ever contending on a write lock.
    """

    def __init__(
        self,
        path: str = ":memory:",
        flush_threshold: int = _FLUSH_THRESHOLD,
        tuned: bool = True,
        defer_indexes: bool = True,
        readonly: bool = False,
    ) -> None:
        self.path = path
        self.readonly = readonly
        self._flush_threshold = max(1, int(flush_threshold))
        if readonly:
            if path == ":memory:":
                raise TraceError("readonly=True needs a file-backed trace")
            self._conn = sqlite3.connect(
                f"file:{path}?mode=ro", uri=True, check_same_thread=False,
                isolation_level=None,
            )
            # Whatever indexes exist are what reads get; creating them
            # would need the write lock this mode exists to avoid.
            self._indexed = True
        else:
            # Simulated threads are backed by OS threads, but the cooperative
            # scheduler guarantees only one runs at a time — cross-thread use
            # of the connection is serialised by construction.  Autocommit
            # isolation lets flush() wrap each batch in one explicit
            # transaction.
            self._conn = sqlite3.connect(
                path, check_same_thread=False, isolation_level=None
            )
            if tuned:
                self._apply_recording_pragmas()
            self._conn.executescript(_SCHEMA_TABLES)
            self._indexed = False
            if not defer_indexes:
                self._create_indexes()
        self._calls: list[tuple] = []
        self._aex: list[tuple] = []
        self._paging: list[tuple] = []
        self._sync: list[tuple] = []
        self._faults: list[tuple] = []
        self._closed = False
        # Owning process: a connection inherited across fork()/spawn() must
        # never touch the database file (shared-nothing guard).
        self._owner_pid = os.getpid()

    def _check_owner(self) -> None:
        if os.getpid() != self._owner_pid:
            raise TraceError(
                f"TraceDatabase({self.path!r}) opened in pid {self._owner_pid} "
                f"used from child pid {os.getpid()}; open a fresh database per "
                "process (the sweep engine gives each worker its own trace)"
            )

    def _apply_recording_pragmas(self) -> None:
        conn = self._conn
        if self.path != ":memory:":
            conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=OFF")
        conn.execute("PRAGMA temp_store=MEMORY")
        conn.execute("PRAGMA cache_size=-32768")  # 32 MiB page cache

    def _create_indexes(self) -> None:
        if not self._indexed:
            self._conn.executescript(_SCHEMA_INDEXES)
            self._indexed = True

    # -- writer side: flat rows (the fast path) -------------------------------

    def add_call_row(self, row: tuple) -> None:
        """Buffer one completed call as a flat ``calls``-schema tuple."""
        buf = self._calls
        buf.append(row)
        if len(buf) >= self._flush_threshold:
            self.flush()

    def add_aex_row(self, row: tuple) -> None:
        """Buffer one traced AEX row."""
        buf = self._aex
        buf.append(row)
        if len(buf) >= self._flush_threshold:
            self.flush()

    def add_paging_row(self, row: tuple) -> None:
        """Buffer one paging row."""
        buf = self._paging
        buf.append(row)
        if len(buf) >= self._flush_threshold:
            self.flush()

    def add_sync_row(self, row: tuple) -> None:
        """Buffer one sync sleep/wake row."""
        buf = self._sync
        buf.append(row)
        if len(buf) >= self._flush_threshold:
            self.flush()

    def add_fault_row(self, row: tuple) -> None:
        """Buffer one fault/recovery row."""
        buf = self._faults
        buf.append(row)
        if len(buf) >= self._flush_threshold:
            self.flush()

    def add_call_rows(self, rows: Iterable[tuple]) -> None:
        """Bulk-insert completed call rows (one transaction, no buffering)."""
        self._write_batch(_INSERT_CALLS, rows)

    def add_aex_rows(self, rows: Iterable[tuple]) -> None:
        """Bulk-insert traced AEX rows."""
        self._write_batch(_INSERT_AEX, rows)

    def add_paging_rows(self, rows: Iterable[tuple]) -> None:
        """Bulk-insert paging rows."""
        self._write_batch(_INSERT_PAGING, rows)

    def add_sync_rows(self, rows: Iterable[tuple]) -> None:
        """Bulk-insert sync rows."""
        self._write_batch(_INSERT_SYNC, rows)

    def add_fault_rows(self, rows: Iterable[tuple]) -> None:
        """Bulk-insert fault/recovery rows."""
        self._write_batch(_INSERT_FAULTS, rows)

    def _write_batch(self, sql: str, rows: Iterable[tuple]) -> None:
        self._check_owner()
        conn = self._conn
        conn.execute("BEGIN")
        try:
            conn.executemany(sql, rows)
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")

    # -- writer side: typed records (compatibility shims) ---------------------

    def set_meta(self, key: str, value: str) -> None:
        """Store one key/value metadata pair (patch level, frequency, ...)."""
        self._check_owner()
        self._conn.execute(
            "INSERT OR REPLACE INTO meta(key, value) VALUES (?, ?)", (key, str(value))
        )

    def add_call(self, event: CallEvent) -> None:
        """Buffer one completed call event."""
        self.add_call_row(event.to_row())

    def add_aex(self, event: AexEvent) -> None:
        """Buffer one traced AEX."""
        self.add_aex_row(
            (
                event.event_id,
                event.timestamp_ns,
                event.enclave_id,
                event.thread_id,
                event.call_id,
            )
        )

    def add_paging(self, record: PagingRecord) -> None:
        """Buffer one paging event."""
        self.add_paging_row(
            (
                record.event_id,
                record.timestamp_ns,
                record.enclave_id,
                record.vaddr,
                record.direction,
            )
        )

    def add_sync(self, event: SyncEvent) -> None:
        """Buffer one sync sleep/wake event."""
        self.add_sync_row(
            (
                event.event_id,
                event.timestamp_ns,
                event.thread_id,
                event.kind.value,
                event.call_id,
                ",".join(str(t) for t in event.targets),
            )
        )

    def add_thread(self, record: ThreadRecord) -> None:
        """Record one observed thread."""
        self._check_owner()
        self._conn.execute(
            "INSERT OR REPLACE INTO threads(thread_id, name, created_ns) VALUES (?,?,?)",
            (record.thread_id, record.name, record.created_ns),
        )

    def add_enclave(self, record: EnclaveRecord) -> None:
        """Record one enclave's static facts."""
        self._check_owner()
        self._conn.execute(
            "INSERT OR REPLACE INTO enclaves"
            "(enclave_id, name, size_pages, tcs_count, base_vaddr) VALUES (?,?,?,?,?)",
            (
                record.enclave_id,
                record.name,
                record.size_pages,
                record.tcs_count,
                record.base_vaddr,
            ),
        )

    def flush(self) -> None:
        """Write buffered rows to the database, one transaction per batch."""
        if self._calls:
            self.add_call_rows(self._calls)
            self._calls.clear()
        if self._aex:
            self.add_aex_rows(self._aex)
            self._aex.clear()
        if self._paging:
            self.add_paging_rows(self._paging)
            self._paging.clear()
        if self._sync:
            self.add_sync_rows(self._sync)
            self._sync.clear()
        if self._faults:
            self.add_fault_rows(self._faults)
            self._faults.clear()

    def close(self) -> None:
        """Flush and close the underlying connection."""
        if not self._closed:
            self._check_owner()
            self.flush()
            self._conn.close()
            self._closed = True

    def __enter__(self) -> "TraceDatabase":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reader side ---------------------------------------------------------

    def _ensure_read(self) -> None:
        """Flush pending rows and build the deferred read indexes."""
        self._check_owner()
        self.flush()
        self._create_indexes()

    def get_meta(self, key: str, default: Optional[str] = None) -> Optional[str]:
        """Fetch one metadata value."""
        self._check_owner()
        row = self._conn.execute("SELECT value FROM meta WHERE key = ?", (key,)).fetchone()
        return row[0] if row else default

    @staticmethod
    def _call_filter(
        kind: Optional[str], name: Optional[str], enclave_id: Optional[int]
    ) -> tuple[str, list]:
        clauses, params = [], []
        if kind is not None:
            clauses.append("kind = ?")
            params.append(kind)
        if name is not None:
            clauses.append("name = ?")
            params.append(name)
        if enclave_id is not None:
            clauses.append("enclave_id = ?")
            params.append(enclave_id)
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        return where, params

    def calls(
        self,
        kind: Optional[str] = None,
        name: Optional[str] = None,
        enclave_id: Optional[int] = None,
    ) -> list[CallEvent]:
        """Load call events, optionally filtered, ordered by start time."""
        self._ensure_read()
        where, params = self._call_filter(kind, name, enclave_id)
        rows = self._conn.execute(
            "SELECT * FROM calls" + where + " ORDER BY start_ns, id", params
        ).fetchall()
        return [CallEvent.from_row(r) for r in rows]

    def call_columns(
        self,
        kind: Optional[str] = None,
        name: Optional[str] = None,
        enclave_id: Optional[int] = None,
    ) -> CallColumns:
        """Load call events as columns — the analyser fast path."""
        self._ensure_read()
        where, params = self._call_filter(kind, name, enclave_id)
        rows = self._conn.execute(
            "SELECT * FROM calls" + where + " ORDER BY start_ns, id", params
        ).fetchall()
        return CallColumns.from_rows(rows)

    # -- reader side: streaming (windowed-memory) API ------------------------

    def calls_count(
        self,
        kind: Optional[str] = None,
        name: Optional[str] = None,
        enclave_id: Optional[int] = None,
    ) -> int:
        """Row count of ``calls`` via ``SELECT count(*)`` — no columns loaded."""
        self._check_owner()
        self.flush()
        where, params = self._call_filter(kind, name, enclave_id)
        return int(
            self._conn.execute("SELECT count(*) FROM calls" + where, params).fetchone()[0]
        )

    def event_count(self) -> int:
        """Total rows across every event table, via ``count(*)`` fast paths."""
        self._check_owner()
        self.flush()
        total = 0
        for table in ("calls", "aex", "paging", "sync", "faults"):
            total += int(
                self._conn.execute(f"SELECT count(*) FROM {table}").fetchone()[0]
            )
        return total

    def table_counts(self) -> dict[str, int]:
        """Per-table row counts (the CLI's pre-analysis sizing line)."""
        self._check_owner()
        self.flush()
        return {
            table: int(
                self._conn.execute(f"SELECT count(*) FROM {table}").fetchone()[0]
            )
            for table in ("calls", "aex", "paging", "sync", "faults")
        }

    def thread_row_counts(self) -> list[tuple[int, int]]:
        """``(thread_id, call rows)`` pairs — the parallel analyser's shard key."""
        self._ensure_read()
        rows = self._conn.execute(
            "SELECT thread_id, count(*) FROM calls GROUP BY thread_id ORDER BY thread_id"
        ).fetchall()
        return [(int(t), int(c)) for t, c in rows]

    def call_columns_chunks(
        self,
        chunk_events: int = DEFAULT_CHUNK_EVENTS,
        thread_ids: Optional[Sequence[int]] = None,
        order: str = "thread",
    ) -> Iterator[CallColumns]:
        """Stream the ``calls`` table as bounded-size column batches.

        ``order="thread"`` yields rows ordered by ``(thread_id, start_ns,
        id)`` — each thread is one contiguous run, which is what the
        incremental analysers need to keep their per-thread parent windows
        small (and what ``idx_calls_thread`` serves without a sort).
        ``order="time"`` yields the reader convention ``(start_ns, id)``.
        ``thread_ids`` restricts the stream to one shard's threads.
        """
        self._ensure_read()
        if order == "thread":
            order_by = " ORDER BY thread_id, start_ns, id"
        elif order == "time":
            order_by = " ORDER BY start_ns, id"
        else:
            raise ValueError(f"unknown chunk order {order!r}")
        where, params = "", []
        if thread_ids is not None:
            marks = ",".join("?" for _ in thread_ids)
            where = f" WHERE thread_id IN ({marks})"
            params = [int(t) for t in thread_ids]
        cursor = self._conn.execute("SELECT * FROM calls" + where + order_by, params)
        chunk = max(1, int(chunk_events))
        while True:
            rows = cursor.fetchmany(chunk)
            if not rows:
                break
            yield CallColumns.from_rows(rows)

    def call_durations_chunks(
        self, chunk_events: int = DEFAULT_CHUNK_EVENTS
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Stream ``(event ids, durations)`` pairs, id-ordered, two ints per row."""
        self._ensure_read()
        cursor = self._conn.execute(
            "SELECT id, end_ns - start_ns FROM calls ORDER BY id"
        )
        chunk = max(1, int(chunk_events))
        while True:
            rows = cursor.fetchmany(chunk)
            if not rows:
                break
            n = len(rows)
            ids = np.fromiter((r[0] for r in rows), dtype=np.int64, count=n)
            durations = np.fromiter((r[1] for r in rows), dtype=np.int64, count=n)
            yield ids, durations

    def ecall_intervals_chunks(
        self, chunk_events: int = DEFAULT_CHUNK_EVENTS
    ) -> Iterator[list[tuple]]:
        """Stream ``(start_ns, end_ns, name)`` of every ecall, time-ordered."""
        yield from self._rows_chunks(
            "SELECT start_ns, end_ns, name FROM calls WHERE kind = ?"
            " ORDER BY start_ns, id",
            chunk_events,
            (ECALL,),
        )

    def sync_rows_chunks(
        self, chunk_events: int = DEFAULT_CHUNK_EVENTS
    ) -> Iterator[list[tuple]]:
        """Stream raw ``sync`` rows in time order."""
        yield from self._rows_chunks(
            "SELECT * FROM sync ORDER BY ts_ns, id", chunk_events
        )

    def paging_rows_chunks(
        self, chunk_events: int = DEFAULT_CHUNK_EVENTS
    ) -> Iterator[list[tuple]]:
        """Stream raw ``paging`` rows in time order."""
        yield from self._rows_chunks(
            "SELECT * FROM paging ORDER BY ts_ns, id", chunk_events
        )

    def fault_events_chunks(
        self, chunk_events: int = DEFAULT_CHUNK_EVENTS
    ) -> Iterator[list[FaultRecord]]:
        """Stream ``faults`` rows as typed records, time-ordered."""
        for rows in self._rows_chunks(
            "SELECT * FROM faults ORDER BY ts_ns, id", chunk_events
        ):
            yield [FaultRecord(*r) for r in rows]

    def _rows_chunks(
        self, sql: str, chunk_events: int, params: Iterable = ()
    ) -> Iterator[list[tuple]]:
        self._ensure_read()
        cursor = self._conn.execute(sql, tuple(params))
        chunk = max(1, int(chunk_events))
        while True:
            rows = cursor.fetchmany(chunk)
            if not rows:
                break
            yield rows

    def durations_ns(
        self,
        kind: Optional[str] = None,
        name: Optional[str] = None,
        enclave_id: Optional[int] = None,
    ) -> np.ndarray:
        """Measured durations straight from SQL, ``(start_ns, id)``-ordered."""
        self._ensure_read()
        where, params = self._call_filter(kind, name, enclave_id)
        rows = self._conn.execute(
            "SELECT end_ns - start_ns FROM calls" + where + " ORDER BY start_ns, id",
            params,
        ).fetchall()
        return np.fromiter((r[0] for r in rows), dtype=np.int64, count=len(rows))

    def starts_ns(
        self,
        kind: Optional[str] = None,
        name: Optional[str] = None,
        enclave_id: Optional[int] = None,
    ) -> np.ndarray:
        """Start timestamps straight from SQL, ``(start_ns, id)``-ordered."""
        self._ensure_read()
        where, params = self._call_filter(kind, name, enclave_id)
        rows = self._conn.execute(
            "SELECT start_ns FROM calls" + where + " ORDER BY start_ns, id", params
        ).fetchall()
        return np.fromiter((r[0] for r in rows), dtype=np.int64, count=len(rows))

    def call_summary(self) -> list[CallSummary]:
        """Per-(kind, name) aggregates grouped in SQL, busiest first."""
        self._ensure_read()
        rows = self._conn.execute(
            "SELECT kind, name, COUNT(*), SUM(end_ns - start_ns),"
            " MIN(end_ns - start_ns), MAX(end_ns - start_ns)"
            " FROM calls GROUP BY kind, name"
            " ORDER BY SUM(end_ns - start_ns) DESC, kind, name"
        ).fetchall()
        return [CallSummary(*r) for r in rows]

    def aex_events(self) -> list[AexEvent]:
        """Load all traced AEX events."""
        self._ensure_read()
        rows = self._conn.execute("SELECT * FROM aex ORDER BY ts_ns").fetchall()
        return [AexEvent(*r) for r in rows]

    def paging_events(self) -> list[PagingRecord]:
        """Load all paging events."""
        self._ensure_read()
        rows = self._conn.execute("SELECT * FROM paging ORDER BY ts_ns, id").fetchall()
        return [PagingRecord(*r) for r in rows]

    def sync_events(self) -> list[SyncEvent]:
        """Load all sync sleep/wake events."""
        self._ensure_read()
        rows = self._conn.execute("SELECT * FROM sync ORDER BY ts_ns, id").fetchall()
        return [
            SyncEvent(
                event_id=r[0],
                timestamp_ns=r[1],
                thread_id=r[2],
                kind=SyncKind(r[3]),
                call_id=r[4],
                targets=tuple(int(t) for t in r[5].split(",") if t),
            )
            for r in rows
        ]

    def fault_events(self) -> list[FaultRecord]:
        """Load all fault/recovery rows."""
        self._ensure_read()
        rows = self._conn.execute("SELECT * FROM faults ORDER BY ts_ns, id").fetchall()
        return [FaultRecord(*r) for r in rows]

    def threads(self) -> list[ThreadRecord]:
        """Load observed threads."""
        self._ensure_read()
        rows = self._conn.execute("SELECT * FROM threads ORDER BY thread_id").fetchall()
        return [ThreadRecord(*r) for r in rows]

    def enclaves(self) -> list[EnclaveRecord]:
        """Load enclave records."""
        self._ensure_read()
        rows = self._conn.execute("SELECT * FROM enclaves ORDER BY enclave_id").fetchall()
        return [EnclaveRecord(*r) for r in rows]

    # -- crash recovery ------------------------------------------------------

    def salvage(self) -> dict:
        """Recovery mode for a trace whose logger died without finalizing.

        A crashed recording run leaves flushed child rows (nested calls,
        AEXs, sync events) referencing parent call ids whose own rows were
        still open in-memory frames when the process died.  Salvage finds
        every such dangling id, synthesises a closed ``<truncated>`` call
        row for it — kind inferred from the evidence the children left
        behind, end time pinned to the trace horizon — and marks the trace
        ``salvaged`` so the analysis layer annotates instead of crashing.

        Returns ``{"closed": <rows synthesised>, "horizon_ns": <horizon>}``.
        Idempotent: a second pass finds nothing dangling.
        """
        self.flush()
        conn = self._conn
        missing: set[int] = set()
        for sql in (
            "SELECT DISTINCT parent_id FROM calls WHERE parent_id IS NOT NULL"
            " AND parent_id NOT IN (SELECT id FROM calls)",
            "SELECT DISTINCT call_id FROM aex WHERE call_id IS NOT NULL"
            " AND call_id NOT IN (SELECT id FROM calls)",
            "SELECT DISTINCT call_id FROM sync"
            " WHERE call_id NOT IN (SELECT id FROM calls)",
        ):
            missing.update(r[0] for r in conn.execute(sql).fetchall())
        horizon = 0
        for sql in (
            "SELECT MAX(end_ns) FROM calls",
            "SELECT MAX(ts_ns) FROM aex",
            "SELECT MAX(ts_ns) FROM paging",
            "SELECT MAX(ts_ns) FROM sync",
        ):
            value = conn.execute(sql).fetchone()[0]
            if value is not None and value > horizon:
                horizon = value
        rows: list[tuple] = []
        fault_rows: list[tuple] = []
        for call_id in sorted(missing):
            children = conn.execute(
                "SELECT kind, enclave_id, thread_id, start_ns FROM calls"
                " WHERE parent_id = ? ORDER BY id",
                (call_id,),
            ).fetchall()
            aex_hits = conn.execute(
                "SELECT enclave_id, thread_id, ts_ns FROM aex WHERE call_id = ?",
                (call_id,),
            ).fetchall()
            sync_hits = conn.execute(
                "SELECT thread_id, ts_ns FROM sync WHERE call_id = ?", (call_id,)
            ).fetchall()
            # Kind heuristics: AEXs interrupt ecalls and ocall children run
            # under ecalls; sync events happen *in* (sync) ocalls and
            # nested-ecall children run under ocalls.
            child_kinds = {c[0] for c in children}
            if aex_hits or OCALL in child_kinds:
                kind = ECALL
            elif sync_hits or ECALL in child_kinds:
                kind = OCALL
            else:
                kind = ECALL
            enclave_id = next(
                (c[1] for c in children), next((a[0] for a in aex_hits), 0)
            )
            thread_id = next(
                (c[2] for c in children),
                next((a[1] for a in aex_hits), next((s[0] for s in sync_hits), 0)),
            )
            evidence = (
                [c[3] for c in children]
                + [a[2] for a in aex_hits]
                + [s[1] for s in sync_hits]
            )
            start_ns = min(evidence) if evidence else horizon
            rows.append(
                (
                    call_id,
                    kind,
                    TRUNCATED_CALL_NAME,
                    -1,
                    enclave_id,
                    thread_id,
                    start_ns,
                    horizon,
                    len(aex_hits),
                    None,
                    0,
                )
            )
            fault_rows.append(
                (
                    None,
                    horizon,
                    enclave_id,
                    thread_id,
                    "truncated",
                    TRUNCATED_CALL_NAME,
                    f"call {call_id} never returned; closed at trace horizon",
                )
            )
        if rows:
            self.add_call_rows(rows)
            self.add_fault_rows(fault_rows)
        self.set_meta("trace_state", "salvaged")
        return {"closed": len(rows), "horizon_ns": horizon}

    def execute(self, sql: str, params: Iterable = ()) -> list[tuple]:
        """Run raw SQL against the trace — the 'other tools' escape hatch.

        Flushes buffered rows but does not force the deferred read indexes;
        ad-hoc SQL decides for itself what it needs.
        """
        self._check_owner()
        self.flush()
        return self._conn.execute(sql, tuple(params)).fetchall()
