"""sgx-perf: the paper's contribution.

Three cooperating tools (paper §4):

* :class:`EventLogger` — LD_PRELOAD-style tracer of ecalls, ocalls, AEXs,
  sync events and EPC paging, serialising to SQLite;
* :class:`WorkingSetEstimator` — page-permission-stripping access counter;
* :class:`Analyzer` — statistics, anti-pattern detectors (SISC/SDSC/SNC/
  SSC/paging), interface security hints, call graphs and reports.
"""

from repro.perf.analysis import AnalysisReport, Analyzer, AnalyzerWeights, Finding, Problem, Recommendation
from repro.perf.database import TRUNCATED_CALL_NAME, TraceDatabase
from repro.perf.events import (
    AexEvent,
    CallEvent,
    ECALL,
    EnclaveRecord,
    FaultRecord,
    OCALL,
    PagingRecord,
    SyncEvent,
    SyncKind,
    ThreadRecord,
)
from repro.perf.logger import AexMode, EventLogger
from repro.perf.workingset import WorkingSetEstimator, WorkingSetReport

__all__ = [
    "AexEvent",
    "AexMode",
    "AnalysisReport",
    "Analyzer",
    "AnalyzerWeights",
    "CallEvent",
    "ECALL",
    "EnclaveRecord",
    "EventLogger",
    "FaultRecord",
    "Finding",
    "OCALL",
    "TRUNCATED_CALL_NAME",
    "PagingRecord",
    "Problem",
    "Recommendation",
    "SyncEvent",
    "SyncKind",
    "ThreadRecord",
    "TraceDatabase",
    "WorkingSetEstimator",
    "WorkingSetReport",
]
