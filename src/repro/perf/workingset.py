"""The enclave working set estimator (paper §4.2).

Reports how many enclave pages are actually *accessed* between two points
in time — usually much fewer than the enclave's size, since guard and
padding pages are never touched.  Knowing the working set lets developers
right-size enclaves and predict paging behaviour under EPC pressure.

Mechanism (identical to the paper's): strip all MMU page permissions of the
enclave's pages, catch the resulting access faults with a SIGSEGV handler,
record the page, restore its permissions and let the access retry.  It
works because permissions are checked twice — MMU first, SGX second — and
only the MMU ones are mutable at runtime.  This interferes heavily with
execution (a fault + mprotect per first touch), which is why it is a
separate tool and not part of the event logger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.sgx import constants as sgxc
from repro.sgx.enclave import Enclave, PageType, Permission
from repro.sgx.enclave import _DEFAULT_PERMS  # model-internal default map
from repro.sgx.events import PageFaultInfo
from repro.sgx.mmu import Mmu
from repro.sim.process import SIGSEGV, SimProcess

# Page types that have no accessible mapping to begin with.
_UNMAPPED = (PageType.SECS, PageType.GUARD, PageType.PADDING)


@dataclass
class WorkingSetReport:
    """Pages accessed during one measurement window."""

    enclave_id: int
    page_indices: frozenset[int]
    by_type: dict[str, int] = field(default_factory=dict)

    @property
    def page_count(self) -> int:
        """Number of distinct pages accessed."""
        return len(self.page_indices)

    @property
    def bytes(self) -> int:
        """Working set size in bytes."""
        return self.page_count * sgxc.PAGE_SIZE

    def __str__(self) -> str:
        mib = self.bytes / (1024 * 1024)
        parts = ", ".join(f"{t}={n}" for t, n in sorted(self.by_type.items()))
        return (
            f"working set of enclave {self.enclave_id}: "
            f"{self.page_count} pages ({mib:.2f} MiB) [{parts}]"
        )


class WorkingSetEstimator:
    """Permission-stripping page-access tracker for one enclave."""

    def __init__(self, process: SimProcess, enclave: Enclave) -> None:
        self.process = process
        self.sim = process.sim
        self.enclave = enclave
        self.mmu = Mmu(process)
        self._accessed: set[int] = set()
        self._previous_handler: Optional[Callable] = None
        self._active = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Strip permissions and install the fault handler."""
        if self._active:
            raise RuntimeError("estimator already started")
        self._previous_handler = self.process.register_signal_handler(
            SIGSEGV, self._on_fault
        )
        self._strip()
        self._accessed.clear()
        self._active = True

    def mark(self) -> WorkingSetReport:
        """End the current window and start a new one.

        Returns the report for the window just closed; permissions are
        stripped again so the next window starts counting from zero.  This
        is the "between two configurable points in time" knob of §4.2.
        """
        report = self._report()
        self._accessed.clear()
        self._strip()
        return report

    def stop(self) -> WorkingSetReport:
        """Restore permissions and the previous handler; final report."""
        if not self._active:
            raise RuntimeError("estimator is not running")
        report = self._report()
        self._restore_all()
        self.process.register_signal_handler(SIGSEGV, self._previous_handler)
        self._previous_handler = None
        self._active = False
        return report

    def __enter__(self) -> "WorkingSetEstimator":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        if self._active:
            self.stop()

    # -- internals ------------------------------------------------------------

    def _strip(self) -> None:
        strippable = (
            p for p in self.enclave.pages if p.page_type not in _UNMAPPED
        )
        self.mmu.protect(strippable, Permission.NONE)

    def _restore_all(self) -> None:
        for page in self.enclave.pages:
            if page.page_type not in _UNMAPPED:
                page.os_perms = _DEFAULT_PERMS[page.page_type]

    def _on_fault(self, signum: int, info: Any) -> bool:
        if not isinstance(info, PageFaultInfo) or info.enclave_id != self.enclave.enclave_id:
            if self._previous_handler is not None:
                return self._previous_handler(signum, info)
            return False
        page = self.enclave.page_at(info.vaddr)
        # Restore this page's permissions (one mprotect) and remember it.
        self.sim.compute(sgxc.MPROTECT_NS)
        page.os_perms = _DEFAULT_PERMS[page.page_type]
        self._accessed.add(page.index)
        return True

    def _report(self) -> WorkingSetReport:
        by_type: dict[str, int] = {}
        for index in self._accessed:
            page_type = self.enclave.pages[index].page_type.value
            by_type[page_type] = by_type.get(page_type, 0) + 1
        return WorkingSetReport(
            enclave_id=self.enclave.enclave_id,
            page_indices=frozenset(self._accessed),
            by_type=by_type,
        )
