"""Trace event model.

Everything sgx-perf records (paper §4): ecall/ocall executions with
timestamps and thread attribution, AEXs (counted or traced), EPC paging
events from the driver tracepoints, synchronisation sleep/wake events, and
thread creations.

Durations follow the paper's §4.1.2 convention: timestamps are taken
*outside* the enclave, so an **ecall** duration includes the transition
round-trip while an **ocall** duration does not.  The analyser compensates
when comparing against the transition cost.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

ECALL = "ecall"
OCALL = "ocall"


@dataclass
class CallEvent:
    """One completed ecall or ocall execution."""

    event_id: int
    kind: str  # ECALL or OCALL
    name: str
    call_index: int
    enclave_id: int
    thread_id: int
    start_ns: int
    end_ns: int = 0
    aex_count: int = 0
    parent_id: Optional[int] = None  # direct parent event (paper §4.3.2)
    is_sync: bool = False  # one of the SDK's four sync ocalls

    @property
    def duration_ns(self) -> int:
        """Wall (virtual) duration as the logger measured it."""
        return self.end_ns - self.start_ns


class SyncKind(enum.Enum):
    """The two event types the four SDK sync ocalls reduce to (§4.1.3)."""

    SLEEP = "sleep"
    WAKE = "wake"


@dataclass(frozen=True)
class SyncEvent:
    """A thread going to sleep or waking other threads via a sync ocall."""

    event_id: int
    timestamp_ns: int
    thread_id: int
    kind: SyncKind
    call_id: int  # the ocall CallEvent this happened in
    # For WAKE: tokens (thread identities) being woken.  For SLEEP: the
    # sleeper's own token.  Lets the analyser track who wakes whom.
    targets: tuple = ()


@dataclass(frozen=True)
class AexEvent:
    """One traced asynchronous enclave exit (aex_mode='trace' only)."""

    event_id: int
    timestamp_ns: int
    enclave_id: int
    thread_id: int
    call_id: Optional[int]  # the open ecall it interrupted, if any


@dataclass(frozen=True)
class PagingRecord:
    """One EPC page crossing, captured from a driver kprobe (§4.1.5)."""

    event_id: int
    timestamp_ns: int
    enclave_id: int
    vaddr: int
    direction: str  # "page_in" | "page_out"


@dataclass(frozen=True)
class ThreadRecord:
    """A thread observed by the logger (via pthread_create shadowing)."""

    thread_id: int
    name: str
    created_ns: int


@dataclass(frozen=True)
class EnclaveRecord:
    """Static facts about an enclave, for offline analysis."""

    enclave_id: int
    name: str
    size_pages: int
    tcs_count: int
    base_vaddr: int
