"""Trace event model.

Everything sgx-perf records (paper §4): ecall/ocall executions with
timestamps and thread attribution, AEXs (counted or traced), EPC paging
events from the driver tracepoints, synchronisation sleep/wake events, and
thread creations.

Durations follow the paper's §4.1.2 convention: timestamps are taken
*outside* the enclave, so an **ecall** duration includes the transition
round-trip while an **ocall** duration does not.  The analyser compensates
when comparing against the transition cost.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

ECALL = "ecall"
OCALL = "ocall"


@dataclass
class CallEvent:
    """One completed ecall or ocall execution."""

    event_id: int
    kind: str  # ECALL or OCALL
    name: str
    call_index: int
    enclave_id: int
    thread_id: int
    start_ns: int
    end_ns: int = 0
    aex_count: int = 0
    parent_id: Optional[int] = None  # direct parent event (paper §4.3.2)
    is_sync: bool = False  # one of the SDK's four sync ocalls

    @property
    def duration_ns(self) -> int:
        """Wall (virtual) duration as the logger measured it."""
        return self.end_ns - self.start_ns

    def to_row(self) -> tuple:
        """Flat tuple in ``calls`` table schema order (the writer format)."""
        return (
            self.event_id,
            self.kind,
            self.name,
            self.call_index,
            self.enclave_id,
            self.thread_id,
            self.start_ns,
            self.end_ns,
            self.aex_count,
            self.parent_id,
            1 if self.is_sync else 0,
        )

    @classmethod
    def from_row(cls, row: tuple) -> "CallEvent":
        """Inflate one ``calls`` table row (the reader direction)."""
        return cls(
            event_id=row[0],
            kind=row[1],
            name=row[2],
            call_index=row[3],
            enclave_id=row[4],
            thread_id=row[5],
            start_ns=row[6],
            end_ns=row[7],
            aex_count=row[8],
            parent_id=row[9],
            is_sync=bool(row[10]),
        )


class SyncKind(enum.Enum):
    """The two event types the four SDK sync ocalls reduce to (§4.1.3)."""

    SLEEP = "sleep"
    WAKE = "wake"


@dataclass(frozen=True)
class SyncEvent:
    """A thread going to sleep or waking other threads via a sync ocall."""

    event_id: int
    timestamp_ns: int
    thread_id: int
    kind: SyncKind
    call_id: int  # the ocall CallEvent this happened in
    # For WAKE: tokens (thread identities) being woken.  For SLEEP: the
    # sleeper's own token.  Lets the analyser track who wakes whom.
    targets: tuple = ()


@dataclass(frozen=True)
class AexEvent:
    """One traced asynchronous enclave exit (aex_mode='trace' only)."""

    event_id: int
    timestamp_ns: int
    enclave_id: int
    thread_id: int
    call_id: Optional[int]  # the open ecall it interrupted, if any


@dataclass(frozen=True)
class PagingRecord:
    """One EPC page crossing, captured from a driver kprobe (§4.1.5)."""

    event_id: int
    timestamp_ns: int
    enclave_id: int
    vaddr: int
    direction: str  # "page_in" | "page_out"


@dataclass(frozen=True)
class FaultRecord:
    """One fault or recovery event (injected faults, retries, truncations).

    ``kind`` is namespaced: ``inject:*`` rows come from the fault injector,
    ``recover:*`` from :class:`~repro.sdk.resilience.ResilientEnclave`,
    ``status:*`` from non-success ecall statuses the logger observed,
    ``serve:*`` from the serving-path availability accounting (``call``
    holds the workload name), ``watchdog:*`` from the hang watchdog, and
    ``truncated`` marks calls closed by abort/salvage rather than by
    returning.
    """

    event_id: int
    timestamp_ns: int
    enclave_id: int
    thread_id: int
    kind: str
    call: str = ""
    detail: str = ""


@dataclass(frozen=True)
class ThreadRecord:
    """A thread observed by the logger (via pthread_create shadowing)."""

    thread_id: int
    name: str
    created_ns: int


@dataclass(frozen=True)
class EnclaveRecord:
    """Static facts about an enclave, for offline analysis."""

    enclave_id: int
    name: str
    size_pages: int
    tcs_count: int
    base_vaddr: int
