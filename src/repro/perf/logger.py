"""The sgx-perf event logger.

A "shared library" preloaded into the untrusted application (paper §4,
Figure 2).  Without touching application, enclave or SDK it:

* **shadows ``sgx_ecall``** — records start/end timestamps, thread and call
  identifiers for every ecall (§4.1.1);
* **rewrites the ocall table** — generates one call stub per ocall that
  logs around the original function pointer, and passes the stub table in
  place of the original one on every ecall (§4.1.2, Figure 3);
* **interprets the four SDK sync ocalls** as sleep/wake events, tracking
  which thread wakes which (§4.1.3);
* **patches the AEP** to count or trace asynchronous exits per ecall
  (§4.1.4);
* **attaches kprobes** to the driver's paging functions to record page-in
  and page-out events with virtual addresses (§4.1.5);
* **shadows ``pthread_create`` and ``signal``/``sigaction``** so threads
  are attributed and application handlers keep working behind the logger's
  own (§4).

Logging overheads are charged in virtual time and calibrated to Table 2:
≈1,367 ns per ecall, ≈1,319 ns per ocall, ≈1,076 ns per counted AEX and
≈1,118 ns per traced AEX.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Optional, Union

from repro.perf.database import TraceDatabase
from repro.perf.events import (
    AexEvent,
    CallEvent,
    ECALL,
    EnclaveRecord,
    OCALL,
    PagingRecord,
    SyncEvent,
    SyncKind,
    ThreadRecord,
)
from repro.sdk.edger8r import (
    SYNC_OCALL_NAMES,
    SYNC_OCALL_SET,
    SYNC_OCALL_SET_MULTIPLE,
    SYNC_OCALL_SETWAIT,
    SYNC_OCALL_WAIT,
)
from repro.sdk.urts import Urts
from repro.sgx.events import AexInfo
from repro.sgx.paging import KPROBE_ELDU, KPROBE_EWB
from repro.sim.loader import Library
from repro.sim.process import SimProcess

# Per-event logging overheads (ns), calibrated against Table 2.
ECALL_LOG_PRE_NS = 700
ECALL_LOG_POST_NS = 667  # total 1,367 per ecall
OCALL_LOG_PRE_NS = 680
OCALL_LOG_POST_NS = 639  # total 1,319 per ocall
AEX_COUNT_NS = 1_076
AEX_TRACE_NS = 1_118
STUB_CREATE_NS = 450  # one-time, per generated ocall stub


class AexMode(enum.Enum):
    """How the logger treats asynchronous exits (§4.1.4)."""

    OFF = "off"  # AEP left untouched
    COUNT = "count"  # per-ecall AEX counter
    TRACE = "trace"  # counter + one timestamped record per AEX


class _LoggerOcallTable:
    """The substituted ocall table (``oT_logger`` in Figure 3)."""

    def __init__(self, original: Any, entries: list[Callable]) -> None:
        self.original = original
        self.names = list(original.names)
        self._entries = entries

    def entry(self, index: int) -> Callable:
        """Stubbed function pointer at ``index``."""
        return self._entries[index]

    def __len__(self) -> int:
        return len(self._entries)


class EventLogger:
    """sgx-perf's preloadable event logger."""

    def __init__(
        self,
        process: SimProcess,
        urts: Urts,
        database: Union[str, TraceDatabase] = ":memory:",
        aex_mode: AexMode = AexMode.COUNT,
        trace_paging: bool = True,
    ) -> None:
        self.process = process
        self.urts = urts
        self.sim = process.sim
        self.db = database if isinstance(database, TraceDatabase) else TraceDatabase(database)
        self.aex_mode = aex_mode
        self.trace_paging = trace_paging
        self.library = Library("libsgxperf.so")
        self._event_seq = 0
        self._stub_tables: dict[int, _LoggerOcallTable] = {}
        self._open_calls: dict[int, list[CallEvent]] = {}
        self._seen_threads: set[int] = set()
        self._wrapped_handlers = 0
        self._installed = False

    # -- lifecycle ----------------------------------------------------------------

    def install(self) -> None:
        """Preload the logger: shadow symbols, patch the AEP, attach kprobes."""
        if self._installed:
            raise RuntimeError("logger is already installed")
        self.library.define("sgx_ecall", self._shadow_sgx_ecall)
        self.library.define("pthread_create", self._shadow_pthread_create)
        self.library.define("signal", self._shadow_signal)
        self.library.define("sigaction", self._shadow_sigaction)
        self.process.loader.preload(self.library)
        if self.aex_mode is not AexMode.OFF:
            self.urts.patch_aep(self._aep_hook)
        if self.trace_paging:
            driver = self.urts.device.driver
            driver.attach_kprobe(KPROBE_EWB, self._kprobe_paging)
            driver.attach_kprobe(KPROBE_ELDU, self._kprobe_paging)
        self._installed = True

    def uninstall(self) -> None:
        """Undo :meth:`install` (the preloaded library is dlclosed)."""
        if not self._installed:
            return
        self.process.loader.unload(self.library)
        if self.aex_mode is not AexMode.OFF:
            self.urts.patch_aep(None)
        if self.trace_paging:
            driver = self.urts.device.driver
            driver.detach_kprobe(KPROBE_EWB, self._kprobe_paging)
            driver.detach_kprobe(KPROBE_ELDU, self._kprobe_paging)
        self._installed = False

    def finalize(self) -> TraceDatabase:
        """Write static records and trace metadata; returns the database."""
        for runtime in self.urts._runtimes.values():
            enclave = runtime.enclave
            self.db.add_enclave(
                EnclaveRecord(
                    enclave_id=enclave.enclave_id,
                    name=enclave.config.name,
                    size_pages=enclave.size_pages,
                    tcs_count=enclave.config.tcs_count,
                    base_vaddr=enclave.base_vaddr,
                )
            )
        cpu = self.urts.device.cpu
        self.db.set_meta("patch_level", cpu.patch_level.value)
        self.db.set_meta("transition_round_trip_ns", cpu.transition_round_trip_ns)
        self.db.set_meta("frequency_ghz", self.sim.clock.frequency_ghz)
        self.db.set_meta("aex_mode", self.aex_mode.value)
        self.db.flush()
        return self.db

    def __enter__(self) -> "EventLogger":
        self.install()
        return self

    def __exit__(self, *exc) -> None:
        if self._installed:
            self.uninstall()
        self.finalize()

    # -- helpers --------------------------------------------------------------------

    def _next_id(self) -> int:
        self._event_seq += 1
        return self._event_seq

    def _tid(self) -> int:
        thread = self.sim.current_thread
        tid = thread.tid if thread is not None else 0
        if tid not in self._seen_threads:
            self._seen_threads.add(tid)
            name = thread.name if thread is not None else "main"
            self.db.add_thread(ThreadRecord(tid, name, self.sim.now_ns))
        return tid

    def _stack(self, tid: int) -> list[CallEvent]:
        stack = self._open_calls.get(tid)
        if stack is None:
            stack = []
            self._open_calls[tid] = stack
        return stack

    # -- sgx_ecall shadow (§4.1.1) -----------------------------------------------------

    def _shadow_sgx_ecall(
        self, enclave_id: int, index: int, ocall_table: Any, args: tuple
    ):
        self.sim.compute(ECALL_LOG_PRE_NS)
        stub_table = self._stub_table_for(ocall_table)
        tid = self._tid()
        stack = self._stack(tid)
        event = CallEvent(
            event_id=self._next_id(),
            kind=ECALL,
            name=self._ecall_name(enclave_id, index),
            call_index=index,
            enclave_id=enclave_id,
            thread_id=tid,
            start_ns=self.sim.now_ns,
            parent_id=stack[-1].event_id if stack else None,
        )
        stack.append(event)
        real_sgx_ecall = self.process.loader.resolve_next("sgx_ecall", self.library)
        try:
            # The stub table is passed in place of the original on *every*
            # ecall — the logger cannot know beforehand whether the ecall
            # will issue ocalls (§4.1.2).
            return real_sgx_ecall(enclave_id, index, stub_table, args)
        finally:
            stack.pop()
            event.end_ns = self.sim.now_ns
            self.db.add_call(event)
            self.sim.compute(ECALL_LOG_POST_NS)

    def _ecall_name(self, enclave_id: int, index: int) -> str:
        runtime = self.urts._runtimes.get(enclave_id)
        if runtime is not None and 0 <= index < len(runtime.definition.ecalls):
            return runtime.definition.ecalls[index].name
        return f"ecall#{index}"

    # -- ocall stubs (§4.1.2, Figure 3) ---------------------------------------------------

    def _stub_table_for(self, original: Any) -> _LoggerOcallTable:
        key = id(original)
        stub_table = self._stub_tables.get(key)
        if stub_table is None:
            # On-the-fly code generation for the stubs: once per table,
            # which in SDK applications means once per enclave.
            entries = [
                self._make_stub(index, name, original.entry(index))
                for index, name in enumerate(original.names)
            ]
            self.sim.compute(STUB_CREATE_NS * max(1, len(entries)))
            stub_table = _LoggerOcallTable(original, entries)
            self._stub_tables[key] = stub_table
        return stub_table

    def _make_stub(self, index: int, name: str, original_fn: Callable) -> Callable:
        is_sync = name in SYNC_OCALL_NAMES

        def stub(*args: Any) -> Any:
            self.sim.compute(OCALL_LOG_PRE_NS)
            tid = self._tid()
            stack = self._stack(tid)
            event = CallEvent(
                event_id=self._next_id(),
                kind=OCALL,
                name=name,
                call_index=index,
                enclave_id=stack[-1].enclave_id if stack else 0,
                thread_id=tid,
                start_ns=self.sim.now_ns,
                parent_id=stack[-1].event_id if stack else None,
                is_sync=is_sync,
            )
            if is_sync:
                self._record_sync(event, name, args)
            stack.append(event)
            try:
                return original_fn(*args)
            finally:
                stack.pop()
                event.end_ns = self.sim.now_ns
                self.db.add_call(event)
                self.sim.compute(OCALL_LOG_POST_NS)

        stub.__name__ = f"sgxperf_stub_{name}"
        return stub

    # -- sync events (§4.1.3) ----------------------------------------------------------

    def _record_sync(self, call: CallEvent, name: str, args: tuple) -> None:
        now = self.sim.now_ns
        if name == SYNC_OCALL_WAIT:
            events = [(SyncKind.SLEEP, (args[0],))]
        elif name == SYNC_OCALL_SET:
            events = [(SyncKind.WAKE, (args[0],))]
        elif name == SYNC_OCALL_SET_MULTIPLE:
            events = [(SyncKind.WAKE, tuple(args[0]))]
        elif name == SYNC_OCALL_SETWAIT:
            events = [(SyncKind.WAKE, (args[0],)), (SyncKind.SLEEP, (args[1],))]
        else:  # pragma: no cover - guarded by caller
            return
        for kind, targets in events:
            self.db.add_sync(
                SyncEvent(
                    event_id=self._next_id(),
                    timestamp_ns=now,
                    thread_id=call.thread_id,
                    kind=kind,
                    call_id=call.event_id,
                    targets=targets,
                )
            )

    # -- AEX hook (§4.1.4) ----------------------------------------------------------------

    def _aep_hook(self, info: AexInfo) -> None:
        if self.aex_mode is AexMode.COUNT:
            self.sim.compute(AEX_COUNT_NS)
        else:
            self.sim.compute(AEX_TRACE_NS)
        tid = self._tid()
        stack = self._stack(tid)
        open_ecall: Optional[CallEvent] = None
        for event in reversed(stack):
            if event.kind == ECALL:
                open_ecall = event
                break
        if open_ecall is not None:
            open_ecall.aex_count += 1
        if self.aex_mode is AexMode.TRACE:
            self.db.add_aex(
                AexEvent(
                    event_id=self._next_id(),
                    timestamp_ns=info.timestamp_ns,
                    enclave_id=info.enclave_id,
                    thread_id=tid,
                    call_id=open_ecall.event_id if open_ecall else None,
                )
            )

    # -- paging kprobes (§4.1.5) --------------------------------------------------------------

    def _kprobe_paging(self, ts_ns: int, enclave_id: int, vaddr: int, direction: str) -> None:
        self.db.add_paging(
            PagingRecord(
                event_id=self._next_id(),
                timestamp_ns=ts_ns,
                enclave_id=enclave_id,
                vaddr=vaddr,
                direction=direction,
            )
        )

    # -- libc shadows ------------------------------------------------------------------------------

    def _shadow_pthread_create(self, target: Callable, *args: Any, name: Optional[str] = None):
        real = self.process.loader.resolve_next("pthread_create", self.library)
        thread = real(target, *args, name=name)
        self.db.add_thread(ThreadRecord(thread.tid, thread.name, self.sim.now_ns))
        return thread

    def _shadow_signal(self, signum: int, handler: Optional[Callable]):
        return self._install_wrapped_handler("signal", signum, handler)

    def _shadow_sigaction(self, signum: int, handler: Optional[Callable]):
        return self._install_wrapped_handler("sigaction", signum, handler)

    def _install_wrapped_handler(
        self, symbol: str, signum: int, handler: Optional[Callable]
    ):
        """Keep application handlers working *behind* the logger's own.

        The logger processes the signal first (it needs some — e.g. JNI
        applications use signals for thread communication, §4), then
        forwards to the handler the application registered.
        """
        real = self.process.loader.resolve_next(symbol, self.library)
        if handler is None:
            return real(signum, None)
        self._wrapped_handlers += 1

        def wrapped(sig: int, info: Any):
            # The logger's own processing is bookkeeping-only in the model.
            return handler(sig, info)

        wrapped.__wrapped__ = handler
        return real(signum, wrapped)

    # -- introspection ------------------------------------------------------------------------

    @property
    def events_recorded(self) -> int:
        """Total number of event ids handed out so far."""
        return self._event_seq
