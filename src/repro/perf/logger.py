"""The sgx-perf event logger.

A "shared library" preloaded into the untrusted application (paper §4,
Figure 2).  Without touching application, enclave or SDK it:

* **shadows ``sgx_ecall``** — records start/end timestamps, thread and call
  identifiers for every ecall (§4.1.1);
* **rewrites the ocall table** — generates one call stub per ocall that
  logs around the original function pointer, and passes the stub table in
  place of the original one on every ecall (§4.1.2, Figure 3);
* **interprets the four SDK sync ocalls** as sleep/wake events, tracking
  which thread wakes which (§4.1.3);
* **patches the AEP** to count or trace asynchronous exits per ecall
  (§4.1.4);
* **attaches kprobes** to the driver's paging functions to record page-in
  and page-out events with virtual addresses (§4.1.5);
* **shadows ``pthread_create`` and ``signal``/``sigaction``** so threads
  are attributed and application handlers keep working behind the logger's
  own (§4).

Logging overheads are charged in virtual time and calibrated to Table 2:
≈1,367 ns per ecall, ≈1,319 ns per ocall, ≈1,076 ns per counted AEX and
≈1,118 ns per traced AEX.

Recording fast path (paper §4.1, Table 2): the hot path appends **flat
tuples to per-thread append-only buffers** — no per-event dataclass, no
per-event SQL.  Buffers are drained into the :class:`TraceDatabase` in
batches (at a threshold and at :meth:`EventLogger.flush`/
:meth:`~EventLogger.finalize`), merged back into event-id order.
:class:`~repro.perf.events.CallEvent` is a *reader-side* type only; the
seed's event-object-per-call implementation survives as
:class:`repro.perf.legacy.LegacyEventLogger` for comparisons.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Optional, Union

from repro.perf.database import TraceDatabase
from repro.perf.events import ECALL, OCALL, EnclaveRecord, SyncKind, ThreadRecord
from repro.sdk.edger8r import (
    SYNC_OCALL_NAMES,
    SYNC_OCALL_SET,
    SYNC_OCALL_SET_MULTIPLE,
    SYNC_OCALL_SETWAIT,
    SYNC_OCALL_WAIT,
)
from repro.sdk.errors import SgxStatus
from repro.sdk.urts import Urts
from repro.sgx.events import AexInfo
from repro.sgx.paging import KPROBE_ELDU, KPROBE_EWB
from repro.sim.loader import Library
from repro.sim.process import SimProcess

# Per-event logging overheads (ns), calibrated against Table 2.
ECALL_LOG_PRE_NS = 700
ECALL_LOG_POST_NS = 667  # total 1,367 per ecall
OCALL_LOG_PRE_NS = 680
OCALL_LOG_POST_NS = 639  # total 1,319 per ocall
AEX_COUNT_NS = 1_076
AEX_TRACE_NS = 1_118
STUB_CREATE_NS = 450  # one-time, per generated ocall stub

# Completed rows buffered across all per-thread buffers before a drain.
# sgx-perf keeps events in memory until teardown (§4.1); the threshold
# only bounds memory on very long runs, so it is deliberately generous —
# serialisation should stay off the recording critical path.
DRAIN_THRESHOLD = 65_536

# Open-call frame layout: a small mutable list per in-flight call.  What
# outlives the call's own stack frame lives here — identity for parent
# links, the enclave for ocall attribution, the kind for AEX attribution,
# the AEX counter the AEP hook increments — plus everything abort() needs
# to close the call as a truncated row if the run dies mid-call.
_F_ID = 0
_F_ENCLAVE = 1
_F_IS_ECALL = 2
_F_AEX = 3
_F_NAME = 4
_F_INDEX = 5
_F_START = 6
_F_SYNC = 7


class AexMode(enum.Enum):
    """How the logger treats asynchronous exits (§4.1.4)."""

    OFF = "off"  # AEP left untouched
    COUNT = "count"  # per-ecall AEX counter
    TRACE = "trace"  # counter + one timestamped record per AEX


class _LoggerOcallTable:
    """The substituted ocall table (``oT_logger`` in Figure 3)."""

    def __init__(self, original: Any, entries: list[Callable]) -> None:
        self.original = original
        self.names = list(original.names)
        self._entries = entries

    def entry(self, index: int) -> Callable:
        """Stubbed function pointer at ``index``."""
        return self._entries[index]

    def __len__(self) -> int:
        return len(self._entries)


class EventLogger:
    """sgx-perf's preloadable event logger."""

    def __init__(
        self,
        process: SimProcess,
        urts: Urts,
        database: Union[str, TraceDatabase] = ":memory:",
        aex_mode: AexMode = AexMode.COUNT,
        trace_paging: bool = True,
    ) -> None:
        self.process = process
        self.urts = urts
        self.sim = process.sim
        self.db = database if isinstance(database, TraceDatabase) else TraceDatabase(database)
        self.aex_mode = aex_mode
        self.trace_paging = trace_paging
        self.library = Library("libsgxperf.so")
        self._clock = self.sim.clock
        self._event_seq = 0
        self._stub_tables: dict[int, _LoggerOcallTable] = {}
        # Per-thread state: open-call frame stacks and completed-row buffers.
        self._open_calls: dict[int, list[list]] = {}
        self._buffers: dict[int, list[tuple]] = {}
        self._aex_rows: list[tuple] = []
        self._paging_rows: list[tuple] = []
        self._sync_rows: list[tuple] = []
        self._fault_rows: list[tuple] = []
        # Off by default: observing non-success ecall statuses writes extra
        # rows, so it is opt-in (enable_fault_recording) to keep fault-free
        # traces byte-identical to pre-fault-injection recordings.
        self._record_statuses = False
        self._pending = 0
        self._seen_threads: set[int] = set()
        # Identity cache for the hot path: one `is` check replaces a tid
        # lookup plus two dict probes (stack, buffer).  The cached list
        # objects stay valid because drains clear buffers in place.
        self._last_thread: Any = self  # sentinel that never equals a thread
        self._last_tid = 0
        self._last_stack: list[list] = []
        self._last_buffer: list[tuple] = []
        self._last_table: Any = self  # sentinel, likewise
        self._last_stub_table: Optional[_LoggerOcallTable] = None
        self._ecall_names: dict[tuple[int, int], str] = {}
        # Live counters for `sgxperf top`: one integer add per event, read
        # by the sampling thread without touching buffers or the database.
        self._n_ecalls = 0
        self._n_ocalls = 0
        self._n_aex = 0
        self._n_page_in = 0
        self._n_page_out = 0
        self._real_sgx_ecall: Optional[Callable] = None
        self._wrapped_handlers = 0
        self._installed = False
        self._aborted = False

    # -- lifecycle ----------------------------------------------------------------

    def install(self) -> None:
        """Preload the logger: shadow symbols, patch the AEP, attach kprobes."""
        if self._installed:
            raise RuntimeError("logger is already installed")
        self.library.define("sgx_ecall", self._shadow_sgx_ecall)
        self.library.define("pthread_create", self._shadow_pthread_create)
        self.library.define("signal", self._shadow_signal)
        self.library.define("sigaction", self._shadow_sigaction)
        self.process.loader.preload(self.library)
        # The next sgx_ecall in search order is stable while preloaded;
        # resolve it once instead of per call.
        self._real_sgx_ecall = self.process.loader.resolve_next("sgx_ecall", self.library)
        if self.aex_mode is not AexMode.OFF:
            self.urts.patch_aep(self._aep_hook)
        if self.trace_paging:
            driver = self.urts.device.driver
            driver.attach_kprobe(KPROBE_EWB, self._kprobe_paging)
            driver.attach_kprobe(KPROBE_ELDU, self._kprobe_paging)
        self._installed = True

    def uninstall(self) -> None:
        """Undo :meth:`install` (the preloaded library is dlclosed)."""
        if not self._installed:
            return
        self.process.loader.unload(self.library)
        self._real_sgx_ecall = None
        if self.aex_mode is not AexMode.OFF:
            self.urts.patch_aep(None)
        if self.trace_paging:
            driver = self.urts.device.driver
            driver.detach_kprobe(KPROBE_EWB, self._kprobe_paging)
            driver.detach_kprobe(KPROBE_ELDU, self._kprobe_paging)
        self._installed = False

    def flush(self) -> None:
        """Drain the per-thread buffers into the database, in event-id order."""
        if self._aborted:
            # abort() already closed the open frames as truncated rows;
            # anything recorded while the crashing run unwinds would
            # collide with them, so it is discarded.
            for buf in self._buffers.values():
                buf.clear()
            self._aex_rows.clear()
            self._paging_rows.clear()
            self._sync_rows.clear()
            self._fault_rows.clear()
            self._pending = 0
            return
        db = self.db
        merged: list[tuple] = []
        for buf in self._buffers.values():
            if buf:
                merged.extend(buf)
                buf.clear()
        if merged:
            if len(merged) > 1:
                merged.sort()  # event ids are unique → sorts by id
            db.add_call_rows(merged)
        if self._aex_rows:
            db.add_aex_rows(self._aex_rows)
            self._aex_rows.clear()
        if self._paging_rows:
            db.add_paging_rows(self._paging_rows)
            self._paging_rows.clear()
        if self._sync_rows:
            db.add_sync_rows(self._sync_rows)
            self._sync_rows.clear()
        if self._fault_rows:
            db.add_fault_rows(self._fault_rows)
            self._fault_rows.clear()
        self._pending = 0

    def finalize(self) -> TraceDatabase:
        """Write static records and trace metadata; returns the database."""
        if self._aborted:
            return self.db  # abort() was this trace's (terminal) finalization
        self.flush()
        for runtime in self.urts.runtimes().values():
            enclave = runtime.enclave
            self.db.add_enclave(
                EnclaveRecord(
                    enclave_id=enclave.enclave_id,
                    name=enclave.config.name,
                    size_pages=enclave.size_pages,
                    tcs_count=enclave.config.tcs_count,
                    base_vaddr=enclave.base_vaddr,
                )
            )
        cpu = self.urts.device.cpu
        self.db.set_meta("patch_level", cpu.patch_level.value)
        self.db.set_meta("transition_round_trip_ns", cpu.transition_round_trip_ns)
        self.db.set_meta("frequency_ghz", self.sim.clock.frequency_ghz)
        self.db.set_meta("aex_mode", self.aex_mode.value)
        self.db.flush()
        return self.db

    def abort(self) -> TraceDatabase:
        """Abnormal-termination finalization: make the trace salvageable.

        Models the logger's crash handler: drain every buffer, close each
        still-open call frame as a truncated row ending *now* (with a
        ``truncated`` fault row so analysis can tell lower-bound durations
        from real ones), and mark the trace ``aborted``.  Unlike
        :meth:`finalize` this writes no static records — a dying process
        does the minimum that keeps the trace readable.

        Terminal: after abort the logger discards anything further (the
        unwinding run would otherwise re-record the calls abort already
        closed) and :meth:`finalize` becomes a no-op.
        """
        now = self._clock.now_ns
        rows: list[tuple] = []
        fault_rows: list[tuple] = []
        for tid, stack in self._open_calls.items():
            for depth, frame in enumerate(stack):
                parent_id = stack[depth - 1][_F_ID] if depth else None
                rows.append(
                    (
                        frame[_F_ID],
                        ECALL if frame[_F_IS_ECALL] else OCALL,
                        frame[_F_NAME],
                        frame[_F_INDEX],
                        frame[_F_ENCLAVE],
                        tid,
                        frame[_F_START],
                        now,
                        frame[_F_AEX],
                        parent_id,
                        frame[_F_SYNC],
                    )
                )
                fault_rows.append(
                    (
                        self._event_seq + len(fault_rows) + 1,
                        now,
                        frame[_F_ENCLAVE],
                        tid,
                        "truncated",
                        frame[_F_NAME],
                        f"open at abort; closed at {now} ns",
                    )
                )
        self._event_seq += len(fault_rows)
        self.flush()
        self._aborted = True
        if rows:
            rows.sort()
            self.db.add_call_rows(rows)
            self.db.add_fault_rows(fault_rows)
        self.db.set_meta("trace_state", "aborted")
        self.db.flush()
        return self.db

    # -- fault recording (repro.faults) -------------------------------------

    def enable_fault_recording(self) -> None:
        """Opt in to fault rows for non-success ecall statuses.

        Separate from :meth:`record_fault` (which always writes): organic
        non-success statuses occur in fault-free runs too, so observing
        them must not silently change existing traces.
        """
        self._record_statuses = True

    def record_fault(
        self, kind: str, enclave_id: int = 0, call: str = "", detail: str = ""
    ) -> None:
        """Append one fault/recovery row to the trace."""
        event_id = self._event_seq = self._event_seq + 1
        self._fault_rows.append(
            (event_id, self._clock.now_ns, enclave_id, self._tid(), kind, call, detail)
        )
        self._pending += 1
        if self._pending >= DRAIN_THRESHOLD:
            self.flush()

    def __enter__(self) -> "EventLogger":
        self.install()
        return self

    def __exit__(self, *exc) -> None:
        if self._installed:
            self.uninstall()
        self.finalize()

    # -- helpers --------------------------------------------------------------------

    def _tid(self) -> int:
        thread = self.sim.current_thread
        if thread is self._last_thread:
            return self._last_tid
        return self._thread_state(thread)[0]

    def _thread_state(self, thread: Any) -> tuple[int, list, list]:
        """Resolve (tid, open-call stack, buffer) and refresh the cache."""
        tid = thread.tid if thread is not None else 0
        if tid not in self._seen_threads:
            self._seen_threads.add(tid)
            name = thread.name if thread is not None else "main"
            self.db.add_thread(ThreadRecord(tid, name, self._clock.now_ns))
        stack = self._open_calls.get(tid)
        if stack is None:
            stack = self._open_calls[tid] = []
        buf = self._buffers.get(tid)
        if buf is None:
            buf = self._buffers[tid] = []
        self._last_thread = thread
        self._last_tid = tid
        self._last_stack = stack
        self._last_buffer = buf
        return tid, stack, buf

    # -- sgx_ecall shadow (§4.1.1) -----------------------------------------------------

    def _shadow_sgx_ecall(
        self, enclave_id: int, index: int, ocall_table: Any, args: tuple
    ):
        sim = self.sim
        clock = self._clock
        sim.compute(ECALL_LOG_PRE_NS)
        if ocall_table is self._last_table:
            stub_table = self._last_stub_table
        else:
            stub_table = self._stub_table_for(ocall_table)
            self._last_table = ocall_table
            self._last_stub_table = stub_table
        thread = sim._current  # attribute, not property: per-event hot path
        if thread is self._last_thread:
            tid = self._last_tid
            stack = self._last_stack
            buf = self._last_buffer
        else:
            tid, stack, buf = self._thread_state(thread)
        event_id = self._event_seq = self._event_seq + 1
        name = self._ecall_names.get((enclave_id, index))
        if name is None:
            name = self._ecall_name(enclave_id, index)
        parent_id = stack[-1][_F_ID] if stack else None
        start_ns = clock.now_ns
        frame = [event_id, enclave_id, True, 0, name, index, start_ns, 0]
        stack.append(frame)
        status: Any = None
        try:
            # The stub table is passed in place of the original on *every*
            # ecall — the logger cannot know beforehand whether the ecall
            # will issue ocalls (§4.1.2).
            out = self._real_sgx_ecall(enclave_id, index, stub_table, args)
            status = out[0]
            return out
        finally:
            # `stack`/`buf` are the entry thread's — a call returns on the
            # thread it started on, even if others ran in between.
            del stack[-1]
            buf.append(
                (
                    event_id,
                    ECALL,
                    name,
                    index,
                    enclave_id,
                    tid,
                    start_ns,
                    clock.now_ns,
                    frame[_F_AEX],
                    parent_id,
                    0,
                )
            )
            self._pending += 1
            self._n_ecalls += 1
            if self._record_statuses and status is not SgxStatus.SGX_SUCCESS:
                fault_id = self._event_seq = self._event_seq + 1
                kind = (
                    f"status:{status.name}" if status is not None else "status:EXCEPTION"
                )
                self._fault_rows.append(
                    (fault_id, clock.now_ns, enclave_id, tid, kind, name, "")
                )
                self._pending += 1
            if self._pending >= DRAIN_THRESHOLD:
                self.flush()
            sim.compute(ECALL_LOG_POST_NS)

    def _ecall_name(self, enclave_id: int, index: int) -> str:
        runtime = self.urts.runtimes().get(enclave_id)
        if runtime is not None and 0 <= index < len(runtime.definition.ecalls):
            name = runtime.definition.ecalls[index].name
            self._ecall_names[(enclave_id, index)] = name
            return name
        return f"ecall#{index}"

    # -- ocall stubs (§4.1.2, Figure 3) ---------------------------------------------------

    def _stub_table_for(self, original: Any) -> _LoggerOcallTable:
        key = id(original)
        stub_table = self._stub_tables.get(key)
        if stub_table is None:
            # On-the-fly code generation for the stubs: once per table,
            # which in SDK applications means once per enclave.
            entries = [
                self._make_stub(index, name, original.entry(index))
                for index, name in enumerate(original.names)
            ]
            self.sim.compute(STUB_CREATE_NS * max(1, len(entries)))
            stub_table = _LoggerOcallTable(original, entries)
            self._stub_tables[key] = stub_table
        return stub_table

    def _make_stub(self, index: int, name: str, original_fn: Callable) -> Callable:
        is_sync = name in SYNC_OCALL_NAMES
        sim = self.sim
        compute = sim.compute
        clock = self._clock
        thread_state = self._thread_state
        record_sync = self._record_sync

        def stub(*args: Any) -> Any:
            compute(OCALL_LOG_PRE_NS)
            thread = sim._current  # attribute, not property: hot path
            if thread is self._last_thread:
                tid = self._last_tid
                stack = self._last_stack
                buf = self._last_buffer
            else:
                tid, stack, buf = thread_state(thread)
            event_id = self._event_seq = self._event_seq + 1
            if stack:
                top = stack[-1]
                parent_id = top[_F_ID]
                enclave_id = top[_F_ENCLAVE]
            else:
                parent_id = None
                enclave_id = 0
            start_ns = clock.now_ns
            if is_sync:
                record_sync(event_id, tid, start_ns, name, args)
            frame = [event_id, enclave_id, False, 0, name, index, start_ns, 1 if is_sync else 0]
            stack.append(frame)
            try:
                return original_fn(*args)
            finally:
                # Entry thread's stack/buffer — see _shadow_sgx_ecall.
                del stack[-1]
                buf.append(
                    (
                        event_id,
                        OCALL,
                        name,
                        index,
                        enclave_id,
                        tid,
                        start_ns,
                        clock.now_ns,
                        frame[_F_AEX],
                        parent_id,
                        1 if is_sync else 0,
                    )
                )
                self._pending += 1
                self._n_ocalls += 1
                if self._pending >= DRAIN_THRESHOLD:
                    self.flush()
                compute(OCALL_LOG_POST_NS)

        stub.__name__ = f"sgxperf_stub_{name}"
        return stub

    # -- sync events (§4.1.3) ----------------------------------------------------------

    def _record_sync(
        self, call_id: int, tid: int, now_ns: int, name: str, args: tuple
    ) -> None:
        if name == SYNC_OCALL_WAIT:
            events = [(SyncKind.SLEEP, (args[0],))]
        elif name == SYNC_OCALL_SET:
            events = [(SyncKind.WAKE, (args[0],))]
        elif name == SYNC_OCALL_SET_MULTIPLE:
            events = [(SyncKind.WAKE, tuple(args[0]))]
        elif name == SYNC_OCALL_SETWAIT:
            events = [(SyncKind.WAKE, (args[0],)), (SyncKind.SLEEP, (args[1],))]
        else:  # pragma: no cover - guarded by caller
            return
        rows = self._sync_rows
        for kind, targets in events:
            event_id = self._event_seq = self._event_seq + 1
            rows.append(
                (
                    event_id,
                    now_ns,
                    tid,
                    kind.value,
                    call_id,
                    ",".join(str(t) for t in targets),
                )
            )
            self._pending += 1
        if self._pending >= DRAIN_THRESHOLD:
            self.flush()

    # -- AEX hook (§4.1.4) ----------------------------------------------------------------

    def _aep_hook(self, info: AexInfo) -> None:
        if self.aex_mode is AexMode.COUNT:
            self.sim.compute(AEX_COUNT_NS)
        else:
            self.sim.compute(AEX_TRACE_NS)
        tid = self._tid()
        stack = self._open_calls.get(tid)
        open_ecall: Optional[list] = None
        if stack:
            for frame in reversed(stack):
                if frame[_F_IS_ECALL]:
                    open_ecall = frame
                    break
        if open_ecall is not None:
            open_ecall[_F_AEX] += 1
        self._n_aex += 1
        if self.aex_mode is AexMode.TRACE:
            event_id = self._event_seq = self._event_seq + 1
            self._aex_rows.append(
                (
                    event_id,
                    info.timestamp_ns,
                    info.enclave_id,
                    tid,
                    open_ecall[_F_ID] if open_ecall is not None else None,
                )
            )
            self._pending += 1
            if self._pending >= DRAIN_THRESHOLD:
                self.flush()

    # -- paging kprobes (§4.1.5) --------------------------------------------------------------

    def _kprobe_paging(self, ts_ns: int, enclave_id: int, vaddr: int, direction: str) -> None:
        event_id = self._event_seq = self._event_seq + 1
        if direction == "page_in":
            self._n_page_in += 1
        else:
            self._n_page_out += 1
        self._paging_rows.append((event_id, ts_ns, enclave_id, vaddr, direction))
        self._pending += 1
        if self._pending >= DRAIN_THRESHOLD:
            self.flush()

    # -- libc shadows ------------------------------------------------------------------------------

    def _shadow_pthread_create(self, target: Callable, *args: Any, name: Optional[str] = None):
        real = self.process.loader.resolve_next("pthread_create", self.library)
        thread = real(target, *args, name=name)
        self.db.add_thread(ThreadRecord(thread.tid, thread.name, self._clock.now_ns))
        return thread

    def _shadow_signal(self, signum: int, handler: Optional[Callable]):
        return self._install_wrapped_handler("signal", signum, handler)

    def _shadow_sigaction(self, signum: int, handler: Optional[Callable]):
        return self._install_wrapped_handler("sigaction", signum, handler)

    def _install_wrapped_handler(
        self, symbol: str, signum: int, handler: Optional[Callable]
    ):
        """Keep application handlers working *behind* the logger's own.

        The logger processes the signal first (it needs some — e.g. JNI
        applications use signals for thread communication, §4), then
        forwards to the handler the application registered.
        """
        real = self.process.loader.resolve_next(symbol, self.library)
        if handler is None:
            return real(signum, None)
        self._wrapped_handlers += 1

        def wrapped(sig: int, info: Any):
            # The logger's own processing is bookkeeping-only in the model.
            return handler(sig, info)

        wrapped.__wrapped__ = handler
        return real(signum, wrapped)

    # -- introspection ------------------------------------------------------------------------

    @property
    def events_recorded(self) -> int:
        """Total number of event ids handed out so far."""
        return self._event_seq

    @property
    def events_buffered(self) -> int:
        """Completed rows waiting in per-thread buffers for the next drain."""
        return self._pending

    def live_counts(self) -> dict[str, int]:
        """Cheap counter snapshot for live sampling (``sgxperf top``).

        Alongside the cumulative event counters, the snapshot carries the
        EPC occupancy gauges straight off the device — resident pages,
        the *effective* capacity (shrunk while a squeeze is active) and
        the squeezed-away page count — so a live sampler can report
        memory pressure without touching the trace database.
        """
        epc = self.urts.device.epc
        return {
            "ecalls": self._n_ecalls,
            "ocalls": self._n_ocalls,
            "aex": self._n_aex,
            "page_in": self._n_page_in,
            "page_out": self._n_page_out,
            "epc_resident": epc.resident_pages,
            "epc_capacity": epc.effective_capacity,
            "epc_squeezed": epc.squeezed_pages,
        }
