"""Live analysis: ``sgxperf top`` (a sampling hook on a running simulation).

The offline analyser answers "what happened"; ``top`` answers "what is
happening".  :class:`LiveTop` attaches to a running :class:`EventLogger`
as a daemon *simulated* thread (the same device the hang watchdog uses):
it wakes every ``interval_ns`` of virtual time, snapshots the logger's
live counters — one integer read each, no buffers, no database — and
renders transition rates, AEX counts, paging pressure and, when a
serving path is attached, the circuit breaker's state.

Because sampling runs on the simulator's virtual clock, output is fully
deterministic for a given seed: the same run produces the same samples,
which is what the tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.perf.logger import EventLogger

DEFAULT_INTERVAL_NS = 1_000_000  # 1 ms of virtual time


@dataclass(frozen=True)
class TopSample:
    """One sampling tick: cumulative counts plus rates over the interval."""

    now_ns: int
    ecalls: int
    ocalls: int
    aex: int
    page_in: int
    page_out: int
    ecall_rate: float  # events per second of virtual time, over the tick
    ocall_rate: float
    aex_rate: float
    paging_rate: float
    breaker_state: Optional[str] = None
    breaker_failures: int = 0
    breaker_opened: int = 0
    epc_resident: int = 0
    epc_capacity: int = 0
    epc_squeezed: int = 0
    brownout_level: Optional[str] = None

    @property
    def epc_occupancy(self) -> float:
        """Resident fraction of the *effective* (post-squeeze) capacity."""
        if self.epc_capacity <= 0:
            return 0.0
        return self.epc_resident / self.epc_capacity

    def render(self) -> str:
        line = (
            f"top {self.now_ns / 1e6:10.3f} ms | "
            f"ecalls {self.ecalls:>7} ({self.ecall_rate:>9.0f}/s) | "
            f"ocalls {self.ocalls:>7} ({self.ocall_rate:>9.0f}/s) | "
            f"aex {self.aex:>5} | "
            f"paging {self.page_in + self.page_out:>5} "
            f"(in {self.page_in}, out {self.page_out}, {self.paging_rate:.0f}/s)"
        )
        if self.epc_capacity > 0:
            line += (
                f" | epc {self.epc_resident}/{self.epc_capacity}p"
                f" ({self.epc_occupancy:.0%}"
                + (f", squeezed {self.epc_squeezed}p" if self.epc_squeezed else "")
                + ")"
            )
        if self.brownout_level is not None:
            line += f" | brownout {self.brownout_level}"
        if self.breaker_state is not None:
            line += (
                f" | breaker {self.breaker_state}"
                f" (fails {self.breaker_failures}, opened {self.breaker_opened})"
            )
        return line


class LiveTop:
    """Samples a running logger every ``interval_ns`` of virtual time."""

    def __init__(
        self,
        logger: EventLogger,
        interval_ns: int = DEFAULT_INTERVAL_NS,
        breaker=None,
        brownout=None,
        on_sample: Optional[Callable[[TopSample], None]] = None,
    ) -> None:
        if interval_ns <= 0:
            raise ValueError(f"interval_ns must be positive, got {interval_ns}")
        self.logger = logger
        self.sim = logger.sim
        self.interval_ns = int(interval_ns)
        self.breaker = breaker
        self.brownout = brownout
        self.on_sample = on_sample
        self.samples: list[TopSample] = []
        self._last = dict.fromkeys(("ecalls", "ocalls", "aex", "page_in", "page_out"), 0)
        self._last_ns = self.sim.clock.now_ns
        self._armed = False
        self._stopped = False

    # -- lifecycle -----------------------------------------------------------

    def attach(self) -> "LiveTop":
        """Spawn the sampling daemon thread (idempotent).

        A daemon thread never keeps the simulation alive: when the
        workload's last real thread finishes, sampling ends with it.
        """
        if not self._armed:
            self._armed = True
            self.sim.spawn(self._loop, name="sgxperf-top", daemon=True)
        return self

    def stop(self) -> None:
        """Ask the sampler to exit at its next tick."""
        self._stopped = True

    def _loop(self) -> None:
        while not self._stopped:
            self.sim.compute(self.interval_ns)
            self.sample()

    # -- sampling ------------------------------------------------------------

    def sample(self) -> TopSample:
        """Take one sample now (the daemon loop calls this every tick)."""
        now = self.sim.clock.now_ns
        counts = self.logger.live_counts()
        dt_ns = now - self._last_ns

        def rate(key: str) -> float:
            if dt_ns <= 0:
                return 0.0
            return (counts[key] - self._last[key]) * 1e9 / dt_ns

        sample = TopSample(
            now_ns=now,
            ecalls=counts["ecalls"],
            ocalls=counts["ocalls"],
            aex=counts["aex"],
            page_in=counts["page_in"],
            page_out=counts["page_out"],
            ecall_rate=rate("ecalls"),
            ocall_rate=rate("ocalls"),
            aex_rate=rate("aex"),
            paging_rate=rate("page_in") + rate("page_out"),
            breaker_state=self.breaker.state if self.breaker is not None else None,
            breaker_failures=(
                self.breaker.consecutive_failures if self.breaker is not None else 0
            ),
            breaker_opened=self.breaker.opened_count if self.breaker is not None else 0,
            epc_resident=counts.get("epc_resident", 0),
            epc_capacity=counts.get("epc_capacity", 0),
            epc_squeezed=counts.get("epc_squeezed", 0),
            brownout_level=(
                self.brownout.level_name if self.brownout is not None else None
            ),
        )
        self._last = counts
        self._last_ns = now
        self.samples.append(sample)
        if self.on_sample is not None:
            self.on_sample(sample)
        return sample

    def render_summary(self) -> str:
        """Closing summary over the whole sampled run."""
        if not self.samples:
            return "top: no samples taken (run shorter than one interval)"
        last = self.samples[-1]
        peak_ecall = max(s.ecall_rate for s in self.samples)
        peak_ocall = max(s.ocall_rate for s in self.samples)
        peak_paging = max(s.paging_rate for s in self.samples)
        lines = [
            f"top: {len(self.samples)} samples over {last.now_ns / 1e6:.3f} ms "
            f"(virtual), interval {self.interval_ns / 1e6:g} ms",
            f"  ecalls {last.ecalls} (peak {peak_ecall:.0f}/s)   "
            f"ocalls {last.ocalls} (peak {peak_ocall:.0f}/s)",
            f"  aex {last.aex}   paging in {last.page_in} / out {last.page_out} "
            f"(peak {peak_paging:.0f}/s)",
        ]
        if last.epc_capacity > 0:
            peak_resident = max(s.epc_resident for s in self.samples)
            lines.append(
                f"  epc {last.epc_resident}/{last.epc_capacity} pages "
                f"({last.epc_occupancy:.0%}, peak {peak_resident}p"
                + (
                    f", squeezed {last.epc_squeezed}p"
                    if last.epc_squeezed
                    else ""
                )
                + ")"
            )
        if last.brownout_level is not None:
            deepest = max(
                self.samples,
                key=lambda s: ("", "normal", "brownout", "deep").index(
                    s.brownout_level or ""
                ),
            )
            lines.append(
                f"  brownout {last.brownout_level} "
                f"(deepest seen {deepest.brownout_level})"
            )
        if last.breaker_state is not None:
            lines.append(
                f"  breaker {last.breaker_state} (opened {last.breaker_opened}x)"
            )
        return "\n".join(lines)
