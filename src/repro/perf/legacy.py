"""The seed's event-object-per-call recording path, kept as a reference.

:class:`LegacyEventLogger` preserves the original implementation exactly:
one :class:`~repro.perf.events.CallEvent` dataclass per call, handed to
``TraceDatabase.add_call`` one row at a time, with ``resolve_next`` and the
thread-id bookkeeping on every call.  Virtual-time charges are identical to
:class:`~repro.perf.logger.EventLogger` — only the wall-clock recording
cost differs — which is what makes it useful:

* the determinism regression test records the same workload through both
  paths and asserts identical table contents;
* the record-throughput benchmark uses it as the seed baseline.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.perf.events import (
    AexEvent,
    CallEvent,
    ECALL,
    OCALL,
    PagingRecord,
    SyncEvent,
    SyncKind,
    ThreadRecord,
)
from repro.perf.logger import (
    AEX_COUNT_NS,
    AEX_TRACE_NS,
    ECALL_LOG_POST_NS,
    ECALL_LOG_PRE_NS,
    OCALL_LOG_POST_NS,
    OCALL_LOG_PRE_NS,
    AexMode,
    EventLogger,
)
from repro.sdk.edger8r import (
    SYNC_OCALL_NAMES,
    SYNC_OCALL_SET,
    SYNC_OCALL_SET_MULTIPLE,
    SYNC_OCALL_SETWAIT,
    SYNC_OCALL_WAIT,
)
from repro.sgx.events import AexInfo


class LegacyEventLogger(EventLogger):
    """Seed recording path: dataclass per event, row-at-a-time writes."""

    def flush(self) -> None:
        # Events were written through ``db.add_call`` as they completed;
        # only the database's own buffers remain.
        self.db.flush()

    def _next_id(self) -> int:
        self._event_seq += 1
        return self._event_seq

    def _tid(self) -> int:
        thread = self.sim.current_thread
        tid = thread.tid if thread is not None else 0
        if tid not in self._seen_threads:
            self._seen_threads.add(tid)
            name = thread.name if thread is not None else "main"
            self.db.add_thread(ThreadRecord(tid, name, self.sim.now_ns))
        return tid

    def _stack(self, tid: int) -> list:
        stack = self._open_calls.get(tid)
        if stack is None:
            stack = []
            self._open_calls[tid] = stack
        return stack

    # -- sgx_ecall shadow -----------------------------------------------------

    def _shadow_sgx_ecall(
        self, enclave_id: int, index: int, ocall_table: Any, args: tuple
    ):
        self.sim.compute(ECALL_LOG_PRE_NS)
        stub_table = self._stub_table_for(ocall_table)
        tid = self._tid()
        stack = self._stack(tid)
        event = CallEvent(
            event_id=self._next_id(),
            kind=ECALL,
            name=self._legacy_ecall_name(enclave_id, index),
            call_index=index,
            enclave_id=enclave_id,
            thread_id=tid,
            start_ns=self.sim.now_ns,
            parent_id=stack[-1].event_id if stack else None,
        )
        stack.append(event)
        real_sgx_ecall = self.process.loader.resolve_next("sgx_ecall", self.library)
        try:
            return real_sgx_ecall(enclave_id, index, stub_table, args)
        finally:
            stack.pop()
            event.end_ns = self.sim.now_ns
            self.db.add_call(event)
            self.sim.compute(ECALL_LOG_POST_NS)

    def _legacy_ecall_name(self, enclave_id: int, index: int) -> str:
        runtime = self.urts.runtimes().get(enclave_id)
        if runtime is not None and 0 <= index < len(runtime.definition.ecalls):
            return runtime.definition.ecalls[index].name
        return f"ecall#{index}"

    # -- ocall stubs ----------------------------------------------------------

    def _make_stub(self, index: int, name: str, original_fn: Callable) -> Callable:
        is_sync = name in SYNC_OCALL_NAMES

        def stub(*args: Any) -> Any:
            self.sim.compute(OCALL_LOG_PRE_NS)
            tid = self._tid()
            stack = self._stack(tid)
            event = CallEvent(
                event_id=self._next_id(),
                kind=OCALL,
                name=name,
                call_index=index,
                enclave_id=stack[-1].enclave_id if stack else 0,
                thread_id=tid,
                start_ns=self.sim.now_ns,
                parent_id=stack[-1].event_id if stack else None,
                is_sync=is_sync,
            )
            if is_sync:
                self._legacy_record_sync(event, name, args)
            stack.append(event)
            try:
                return original_fn(*args)
            finally:
                stack.pop()
                event.end_ns = self.sim.now_ns
                self.db.add_call(event)
                self.sim.compute(OCALL_LOG_POST_NS)

        stub.__name__ = f"sgxperf_stub_{name}"
        return stub

    # -- sync events ----------------------------------------------------------

    def _legacy_record_sync(self, call: CallEvent, name: str, args: tuple) -> None:
        now = self.sim.now_ns
        if name == SYNC_OCALL_WAIT:
            events = [(SyncKind.SLEEP, (args[0],))]
        elif name == SYNC_OCALL_SET:
            events = [(SyncKind.WAKE, (args[0],))]
        elif name == SYNC_OCALL_SET_MULTIPLE:
            events = [(SyncKind.WAKE, tuple(args[0]))]
        elif name == SYNC_OCALL_SETWAIT:
            events = [(SyncKind.WAKE, (args[0],)), (SyncKind.SLEEP, (args[1],))]
        else:  # pragma: no cover - guarded by caller
            return
        for kind, targets in events:
            self.db.add_sync(
                SyncEvent(
                    event_id=self._next_id(),
                    timestamp_ns=now,
                    thread_id=call.thread_id,
                    kind=kind,
                    call_id=call.event_id,
                    targets=targets,
                )
            )

    # -- AEX hook -------------------------------------------------------------

    def _aep_hook(self, info: AexInfo) -> None:
        if self.aex_mode is AexMode.COUNT:
            self.sim.compute(AEX_COUNT_NS)
        else:
            self.sim.compute(AEX_TRACE_NS)
        tid = self._tid()
        stack = self._stack(tid)
        open_ecall: Optional[CallEvent] = None
        for event in reversed(stack):
            if event.kind == ECALL:
                open_ecall = event
                break
        if open_ecall is not None:
            open_ecall.aex_count += 1
        if self.aex_mode is AexMode.TRACE:
            self.db.add_aex(
                AexEvent(
                    event_id=self._next_id(),
                    timestamp_ns=info.timestamp_ns,
                    enclave_id=info.enclave_id,
                    thread_id=tid,
                    call_id=open_ecall.event_id if open_ecall else None,
                )
            )

    # -- paging kprobes -------------------------------------------------------

    def _kprobe_paging(self, ts_ns: int, enclave_id: int, vaddr: int, direction: str) -> None:
        self.db.add_paging(
            PagingRecord(
                event_id=self._next_id(),
                timestamp_ns=ts_ns,
                enclave_id=enclave_id,
                vaddr=vaddr,
                direction=direction,
            )
        )
