"""Command-line interface: ``sgxperf``.

Subcommands:

* ``record``  — run one of the bundled workloads under the event logger and
  write the trace database (the moral equivalent of
  ``LD_PRELOAD=liblogger.so ./app``);
* ``analyze`` — produce the full report for a trace (optionally with the
  enclave's EDL file for allow-list narrowing);
* ``stats``   — detailed statistics/histogram/scatter for one call;
* ``dot``     — emit the Figure 5-style call graph in Graphviz DOT;
* ``salvage`` — recover a trace whose recording run crashed (close dangling
  calls, mark the trace salvaged);
* ``workloads`` — list recordable workloads.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Optional

from repro.perf.analysis import Analyzer
from repro.perf.analysis import stats as stats_mod
from repro.perf.database import TraceDatabase
from repro.sdk.edl import parse_edl


def _workload_registry() -> dict[str, Callable[[str, int], None]]:
    """Name → recorder function(db_path, seed).  Imported lazily."""
    from repro.workloads import recorders

    return recorders.REGISTRY


def _cmd_record(args: argparse.Namespace) -> int:
    registry = _workload_registry()
    recorder = registry.get(args.workload)
    if recorder is None:
        print(
            f"unknown workload {args.workload!r}; available: "
            + ", ".join(sorted(registry)),
            file=sys.stderr,
        )
        return 2
    recorder(args.output, args.seed)
    print(f"trace written to {args.output}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    definition = None
    if args.edl:
        with open(args.edl) as f:
            definition = parse_edl(f.read())
    with TraceDatabase(args.trace) as db:
        report = Analyzer(db, definition=definition).run()
        print(report.render_text(max_stats_rows=args.rows))
        if args.availability:
            print()
            print(report.render_availability())
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    with TraceDatabase(args.trace) as db:
        events = db.calls(kind=args.kind, name=args.call)
        if not events:
            print(f"no events for {args.kind} {args.call!r}", file=sys.stderr)
            return 1
        stat = stats_mod.compute_statistics(args.kind, args.call, events)
        print(
            f"{stat.kind} {stat.name}: n={stat.count} mean={stat.mean_ns:.0f}ns "
            f"median={stat.median_ns:.0f}ns std={stat.std_ns:.0f}ns "
            f"p90={stat.p90_ns:.0f}ns p95={stat.p95_ns:.0f}ns p99={stat.p99_ns:.0f}ns"
        )
        if args.histogram:
            print(stats_mod.histogram(events, bins=args.bins).render())
        if args.scatter:
            starts, durations = stats_mod.scatter_series(events)
            for s, d in zip(starts, durations):
                print(f"{s} {d}")
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    with TraceDatabase(args.trace) as db:
        print(Analyzer(db).call_graph_dot())
    return 0


def _cmd_salvage(args: argparse.Namespace) -> int:
    with TraceDatabase(args.trace) as db:
        result = db.salvage()
        print(
            f"salvaged {args.trace}: closed {result['closed']} dangling call(s) "
            f"at horizon {result['horizon_ns']} ns"
        )
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    for name in sorted(_workload_registry()):
        print(name)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``sgxperf`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="sgxperf",
        description="Performance analysis for (simulated) Intel SGX enclaves",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_record = sub.add_parser("record", help="run a bundled workload under the logger")
    p_record.add_argument("workload", help="workload name (see `sgxperf workloads`)")
    p_record.add_argument("-o", "--output", default="trace.db", help="trace database path")
    p_record.add_argument("--seed", type=int, default=0, help="simulation seed")
    p_record.set_defaults(func=_cmd_record)

    p_analyze = sub.add_parser("analyze", help="analyse a recorded trace")
    p_analyze.add_argument("trace", help="trace database path")
    p_analyze.add_argument("--edl", help="enclave EDL file for security analysis")
    p_analyze.add_argument("--rows", type=int, default=20, help="statistics rows to print")
    p_analyze.add_argument(
        "--availability",
        action="store_true",
        help="append the serving-path availability section (serve:*/watchdog:* rows)",
    )
    p_analyze.set_defaults(func=_cmd_analyze)

    p_stats = sub.add_parser("stats", help="statistics for one call")
    p_stats.add_argument("trace")
    p_stats.add_argument("kind", choices=["ecall", "ocall"])
    p_stats.add_argument("call")
    p_stats.add_argument("--histogram", action="store_true")
    p_stats.add_argument("--bins", type=int, default=100)
    p_stats.add_argument("--scatter", action="store_true")
    p_stats.set_defaults(func=_cmd_stats)

    p_dot = sub.add_parser("dot", help="emit the call graph as Graphviz DOT")
    p_dot.add_argument("trace")
    p_dot.set_defaults(func=_cmd_dot)

    p_salvage = sub.add_parser("salvage", help="recover a crashed recording run's trace")
    p_salvage.add_argument("trace", help="trace database path")
    p_salvage.set_defaults(func=_cmd_salvage)

    p_list = sub.add_parser("workloads", help="list recordable workloads")
    p_list.set_defaults(func=_cmd_workloads)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    """Entry point for the ``sgxperf`` console script."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
