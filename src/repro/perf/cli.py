"""Command-line interface: ``sgxperf``.

Subcommands:

* ``record``  — run one of the bundled workloads under the event logger and
  write the trace database (the moral equivalent of
  ``LD_PRELOAD=liblogger.so ./app``);
* ``analyze`` — produce the full report for a trace (optionally with the
  enclave's EDL file for allow-list narrowing); ``--jobs N`` /
  ``--chunk-events M`` / ``--streaming`` select the streaming analyser,
  which produces byte-identical reports in windowed memory, sharded by
  thread across worker processes when ``N > 1``;
* ``top``     — run a workload with a live sampling display: transition
  rates, AEX counts and paging pressure every interval of virtual time;
* ``stats``   — detailed statistics/histogram/scatter for one call;
* ``dot``     — emit the Figure 5-style call graph in Graphviz DOT;
* ``salvage`` — recover a trace whose recording run crashed (close dangling
  calls, mark the trace salvaged);
* ``optimize`` — build an interface-optimization plan (fused calls,
  switchless calls, ocall batching) from a trace's findings; ``--apply``
  prints the rewritten EDL, ``--rerun WORKLOAD`` replays the same seeded
  load on the optimized interface and prints the before/after report;
* ``sweep``   — fan a declarative grid of seeded campaign/netcampaign runs
  across a shared-nothing process pool and print the deterministically
  merged report (``--jobs N``, default cpu count / ``SGXPERF_JOBS``);
* ``cluster`` — run a sharded multi-enclave serving cluster (router,
  gateway batching, open-loop load, optional node-loss chaos) with one
  shard per worker process and print the merged per-node + cluster-wide
  SLO report;
* ``workloads`` — list recordable workloads.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Optional

from repro.perf.analysis import Analyzer
from repro.perf.analysis import stats as stats_mod
from repro.perf.database import TraceDatabase
from repro.sdk.edl import parse_edl


def _workload_registry() -> dict[str, Callable[[str, int], None]]:
    """Name → recorder function(db_path, seed).  Imported lazily."""
    from repro.workloads import recorders

    return recorders.REGISTRY


def _cmd_record(args: argparse.Namespace) -> int:
    registry = _workload_registry()
    recorder = registry.get(args.workload)
    if recorder is None:
        print(
            f"unknown workload {args.workload!r}; available: "
            + ", ".join(sorted(registry)),
            file=sys.stderr,
        )
        return 2
    recorder(args.output, args.seed)
    print(f"trace written to {args.output}")
    return 0


def _cmd_analyze_cluster(args: argparse.Namespace) -> int:
    """Merge a directory of per-shard cluster traces: SLOs + orderliness."""
    import glob
    import os

    from repro.cluster.orderly import render_orderliness, validate_trace_paths
    from repro.cluster.slo import cluster_slo_from_traces, render_trace_slo

    paths = sorted(glob.glob(os.path.join(args.trace, "*.db")))
    if not paths:
        print(f"no shard traces (*.db) under {args.trace}", file=sys.stderr)
        return 2
    print(
        f"merging {len(paths)} shard trace(s) under {args.trace}", file=sys.stderr
    )
    print(render_trace_slo(cluster_slo_from_traces(paths)))
    violations, totals = validate_trace_paths(paths)
    print()
    print(render_orderliness(violations, totals))
    return 1 if violations else 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.cluster:
        return _cmd_analyze_cluster(args)
    definition = None
    if args.edl:
        with open(args.edl) as f:
            definition = parse_edl(f.read())
    streaming = args.jobs != 1 or args.chunk_events is not None or args.streaming
    with TraceDatabase(args.trace) as db:
        counts = db.table_counts()
        total = sum(counts.values())
        mode = (
            f"streaming (jobs={args.jobs}, chunk-events="
            f"{args.chunk_events or 'default'})"
            if streaming
            else "in-memory"
        )
        print(
            f"analyzing {args.trace}: {counts['calls']} calls, "
            f"{counts['paging']} paging, {counts['sync']} sync, "
            f"{counts['faults']} fault rows ({total} events total), {mode}",
            file=sys.stderr,
        )
        if streaming:
            from repro.perf.analysis.streaming import StreamingAnalyzer

            report = StreamingAnalyzer(
                db,
                definition=definition,
                chunk_events=args.chunk_events,
                jobs=args.jobs,
            ).run()
        else:
            report = Analyzer(db, definition=definition).run()
        if args.json:
            from repro.perf.analysis.export import report_to_json

            print(report_to_json(report))
            return 0
        print(report.render_text(max_stats_rows=args.rows))
        if args.availability:
            print()
            print(report.render_availability())
        if args.pressure:
            print()
            print(report.render_pressure())
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.perf.top import LiveTop, TopSample

    registry = _workload_registry()
    recorder = registry.get(args.workload)
    if recorder is None:
        print(
            f"unknown workload {args.workload!r}; available: "
            + ", ".join(sorted(registry)),
            file=sys.stderr,
        )
        return 2
    tops: list[LiveTop] = []

    def attach(logger) -> None:
        def on_sample(sample: TopSample) -> None:
            print(sample.render())

        top = LiveTop(
            logger, interval_ns=args.interval_us * 1_000, on_sample=on_sample
        )
        tops.append(top.attach())

    recorder(args.output, args.seed, attach=attach)
    if tops:
        print(tops[0].render_summary())
    if args.output != ":memory:":
        print(f"trace written to {args.output}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    with TraceDatabase(args.trace) as db:
        events = db.calls(kind=args.kind, name=args.call)
        if not events:
            print(f"no events for {args.kind} {args.call!r}", file=sys.stderr)
            return 1
        stat = stats_mod.compute_statistics(args.kind, args.call, events)
        print(
            f"{stat.kind} {stat.name}: n={stat.count} mean={stat.mean_ns:.0f}ns "
            f"median={stat.median_ns:.0f}ns std={stat.std_ns:.0f}ns "
            f"p90={stat.p90_ns:.0f}ns p95={stat.p95_ns:.0f}ns p99={stat.p99_ns:.0f}ns"
        )
        if args.histogram:
            print(stats_mod.histogram(events, bins=args.bins).render())
        if args.scatter:
            starts, durations = stats_mod.scatter_series(events)
            for s, d in zip(starts, durations):
                print(f"{s} {d}")
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    with TraceDatabase(args.trace) as db:
        print(Analyzer(db).call_graph_dot())
    return 0


def _cmd_salvage(args: argparse.Namespace) -> int:
    with TraceDatabase(args.trace) as db:
        result = db.salvage()
        print(
            f"salvaged {args.trace}: closed {result['closed']} dangling call(s) "
            f"at horizon {result['horizon_ns']} ns"
        )
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    for name in sorted(_workload_registry()):
        print(name)
    return 0


def _sweep_value(text: str):
    """Parse one grid value: int, then float, then bool keyword, else string."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            pass
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def _sweep_spec(args: argparse.Namespace) -> dict:
    """Build the declarative grid spec from ``--spec`` or inline flags."""
    import json

    if args.spec:
        if args.spec == "-":
            spec = json.load(sys.stdin)
        else:
            with open(args.spec) as f:
                spec = json.load(f)
    else:
        if not args.kind:
            raise SystemExit(
                "sweep: pass a task kind "
                "(campaign|clusternode|netcampaign|optimizer|selftest|stressor) "
                "or --spec"
            )
        spec = {"kind": args.kind, "seeds": args.seeds, "params": {}, "grid": {}}
        for item in args.params:
            name, eq, value = item.partition("=")
            if not eq:
                raise SystemExit(f"sweep: --set needs NAME=VALUE, got {item!r}")
            spec["params"][name] = _sweep_value(value)
        for item in args.axes:
            name, eq, values = item.partition("=")
            if not eq:
                raise SystemExit(f"sweep: --axis needs NAME=V1,V2,..., got {item!r}")
            spec["grid"][name] = [_sweep_value(v) for v in values.split(",") if v.strip()]
    if args.trace_dir:
        import os

        os.makedirs(args.trace_dir, exist_ok=True)
        spec.setdefault("params", {})["trace_dir"] = args.trace_dir
    return spec


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sweep import run_sweep

    report = run_sweep(spec=_sweep_spec(args), jobs=args.jobs, retries=args.retries)
    if args.manifest:
        with open(args.manifest, "w") as f:
            f.write(report.manifest)
    if args.digest_only:
        print(report.digest)
    else:
        print(report.render_report())
        print(f"wall-clock: {report.wall_seconds:.2f}s with jobs={report.jobs}")
    return 0 if report.failed == 0 and report.lost == 0 else 1


def _optimize_definition(args: argparse.Namespace):
    """The declared interface for plan building / rewriting, if known."""
    if args.edl:
        with open(args.edl) as f:
            return parse_edl(f.read())
    if args.workload == "sqlite":
        from repro.workloads.minisql.enclavised import sqlite_definition

        return sqlite_definition()
    return None


def _cmd_optimize(args: argparse.Namespace) -> int:
    from repro.optimizer import build_plan, run_rerun
    from repro.optimizer.rerun import RERUN_WORKLOADS

    if args.rerun:
        if args.target not in RERUN_WORKLOADS:
            print(
                f"optimize --rerun takes a workload name "
                f"({'|'.join(RERUN_WORKLOADS)}), got {args.target!r}",
                file=sys.stderr,
            )
            return 2
        report = run_rerun(
            args.target, seed=args.seed, requests=args.requests, workdir=args.workdir
        )
        if args.plan_out:
            with open(args.plan_out, "w") as f:
                f.write(report.plan.to_json())
            print(f"plan written to {args.plan_out}", file=sys.stderr)
        print(report.to_json() if args.json else report.render_text())
        if report.plan.transform_count() == 0:
            print("optimize: the plan applied no transforms", file=sys.stderr)
            return 1
        if args.min_speedup and report.speedup < args.min_speedup:
            print(
                f"optimize: speedup {report.speedup:.2f}x below the "
                f"--min-speedup {args.min_speedup:.2f}x gate",
                file=sys.stderr,
            )
            return 1
        return 0

    definition = _optimize_definition(args)
    with TraceDatabase(args.target) as db:
        report = Analyzer(db, definition=definition).run()
    plan = build_plan(report.findings, definition=definition, source=args.target)
    if args.plan_out:
        with open(args.plan_out, "w") as f:
            f.write(plan.to_json())
        print(f"plan written to {args.plan_out}", file=sys.stderr)
    print(plan.to_json() if args.json else plan.render_text())
    if args.apply:
        if definition is None:
            print(
                "optimize --apply needs the declared interface: "
                "pass --edl FILE or --workload sqlite",
                file=sys.stderr,
            )
            return 2
        from repro.sdk.edl import format_edl

        from repro.optimizer.rewrite import InterfaceRewriter

        InterfaceRewriter(plan).rewrite_definition(definition)
        print()
        print(format_edl(definition))
    return 0 if plan.transform_count() else 1


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster.runner import run_cluster_command

    return run_cluster_command(args)


def build_parser() -> argparse.ArgumentParser:
    """The ``sgxperf`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="sgxperf",
        description="Performance analysis for (simulated) Intel SGX enclaves",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_record = sub.add_parser("record", help="run a bundled workload under the logger")
    p_record.add_argument("workload", help="workload name (see `sgxperf workloads`)")
    p_record.add_argument("-o", "--output", default="trace.db", help="trace database path")
    p_record.add_argument("--seed", type=int, default=0, help="simulation seed")
    p_record.set_defaults(func=_cmd_record)

    p_analyze = sub.add_parser("analyze", help="analyse a recorded trace")
    p_analyze.add_argument("trace", help="trace database path")
    p_analyze.add_argument("--edl", help="enclave EDL file for security analysis")
    p_analyze.add_argument("--rows", type=int, default=20, help="statistics rows to print")
    p_analyze.add_argument(
        "--availability",
        action="store_true",
        help="append the serving-path availability section (serve:*/watchdog:* rows)",
    )
    p_analyze.add_argument(
        "--pressure",
        action="store_true",
        help="append the resource-pressure section "
        "(brownout:*/inject:epc-*/recover:epc-wait rows)",
    )
    p_analyze.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="shard the analysis by thread across N worker processes "
        "(any value != 1 selects the streaming analyser)",
    )
    p_analyze.add_argument(
        "--chunk-events",
        type=int,
        default=None,
        metavar="M",
        help="stream the trace in batches of M call rows "
        "(selects the streaming analyser; default batch size 65536)",
    )
    p_analyze.add_argument(
        "--streaming",
        action="store_true",
        help="use the streaming analyser even with jobs=1 and default chunks",
    )
    p_analyze.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable findings document "
        "(sgxperf-findings/1; byte-identical from either analyser)",
    )
    p_analyze.add_argument(
        "--cluster",
        action="store_true",
        help="treat TRACE as a directory of per-shard cluster traces: merge "
        "their SLO rows and audit gateway session orderliness "
        "(exit 1 on protocol violations)",
    )
    p_analyze.set_defaults(func=_cmd_analyze)

    p_top = sub.add_parser(
        "top", help="run a workload with a live sampling display (virtual time)"
    )
    p_top.add_argument("workload", help="workload name (see `sgxperf workloads`)")
    p_top.add_argument(
        "-o",
        "--output",
        default=":memory:",
        help="also keep the trace database at this path (default: discard)",
    )
    p_top.add_argument("--seed", type=int, default=0, help="simulation seed")
    p_top.add_argument(
        "--interval-us",
        type=int,
        default=1_000,
        help="sampling interval in microseconds of virtual time (default 1000)",
    )
    p_top.set_defaults(func=_cmd_top)

    p_stats = sub.add_parser("stats", help="statistics for one call")
    p_stats.add_argument("trace")
    p_stats.add_argument("kind", choices=["ecall", "ocall"])
    p_stats.add_argument("call")
    p_stats.add_argument("--histogram", action="store_true")
    p_stats.add_argument("--bins", type=int, default=100)
    p_stats.add_argument("--scatter", action="store_true")
    p_stats.set_defaults(func=_cmd_stats)

    p_dot = sub.add_parser("dot", help="emit the call graph as Graphviz DOT")
    p_dot.add_argument("trace")
    p_dot.set_defaults(func=_cmd_dot)

    p_salvage = sub.add_parser("salvage", help="recover a crashed recording run's trace")
    p_salvage.add_argument("trace", help="trace database path")
    p_salvage.set_defaults(func=_cmd_salvage)

    p_sweep = sub.add_parser(
        "sweep", help="fan a grid of seeded runs across a shared-nothing process pool"
    )
    p_sweep.add_argument(
        "kind",
        nargs="?",
        choices=[
            "campaign",
            "clusternode",
            "netcampaign",
            "optimizer",
            "selftest",
            "stressor",
        ],
        help="task kind (omit when using --spec)",
    )
    p_sweep.add_argument("--spec", help="JSON sweep spec file ('-' reads stdin)")
    p_sweep.add_argument(
        "--seeds", default="0", help="seed list: '0-15', '0,3,7' or a single seed"
    )
    p_sweep.add_argument(
        "--set",
        action="append",
        dest="params",
        default=[],
        metavar="NAME=VALUE",
        help="fixed parameter applied to every task (repeatable)",
    )
    p_sweep.add_argument(
        "--axis",
        action="append",
        dest="axes",
        default=[],
        metavar="NAME=V1,V2,...",
        help="grid axis swept over the given values (repeatable)",
    )
    p_sweep.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: SGXPERF_JOBS, else cpu count; 0 = inline)",
    )
    p_sweep.add_argument(
        "--retries", type=int, default=1, help="bounded retries for crashed workers"
    )
    p_sweep.add_argument("--trace-dir", help="keep per-task trace databases in this directory")
    p_sweep.add_argument("--manifest", help="write the merged manifest to this path")
    p_sweep.add_argument(
        "--digest-only",
        action="store_true",
        help="print only the manifest digest (the CI determinism gate)",
    )
    p_sweep.set_defaults(func=_cmd_sweep)

    p_optimize = sub.add_parser(
        "optimize",
        help="build an interface-optimization plan from analyser findings "
        "(fused calls, switchless calls, ocall batching)",
    )
    p_optimize.add_argument(
        "target",
        help="trace database to plan from, or a workload name with --rerun",
    )
    p_optimize.add_argument(
        "--rerun",
        action="store_true",
        help="record a baseline of TARGET (a workload name), build the plan, "
        "replay the same load on the optimized interface and print the "
        "before/after report",
    )
    p_optimize.add_argument("--seed", type=int, default=0, help="simulation seed")
    p_optimize.add_argument(
        "--requests", type=int, default=400, help="requests per run (--rerun)"
    )
    p_optimize.add_argument(
        "--edl", help="enclave EDL file (enables --apply and result-model checks)"
    )
    p_optimize.add_argument(
        "--workload",
        help="workload whose bundled interface definition to use (sqlite)",
    )
    p_optimize.add_argument(
        "--apply",
        action="store_true",
        help="also print the rewritten EDL with the plan's declarations added",
    )
    p_optimize.add_argument("--plan-out", help="write the plan JSON to this path")
    p_optimize.add_argument(
        "--json", action="store_true", help="emit the plan/report as JSON"
    )
    p_optimize.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="exit non-zero unless the rerun speedup reaches this factor",
    )
    p_optimize.add_argument(
        "--workdir", help="keep the baseline/optimized traces in this directory"
    )
    p_optimize.set_defaults(func=_cmd_optimize)

    p_cluster = sub.add_parser(
        "cluster",
        help="run a sharded multi-enclave serving cluster and report SLOs",
    )
    from repro.cluster.runner import add_cluster_arguments

    add_cluster_arguments(p_cluster)
    p_cluster.set_defaults(func=_cmd_cluster)

    p_list = sub.add_parser("workloads", help="list recordable workloads")
    p_list.set_defaults(func=_cmd_workloads)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    """Entry point for the ``sgxperf`` console script."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
