"""Sharded multi-enclave serving cluster (routing, batching, cluster SLOs).

N enclave-backed server nodes — SecureKeeper or TaLoS serving stacks —
behind a deterministic router (consistent-hash or sticky least-loaded),
driven open loop by tens of thousands of simulated clients with seeded
Poisson arrivals.  Each node is an isolated simulation shard fanned over
the :mod:`repro.sweep` process pool; per-shard latency histograms merge
into cluster-wide p50/p99/p999 + availability SLO reports, byte-identical
at any worker count.
"""

from repro.cluster.brownout import (
    BrownoutController,
    ClusterOverloaded,
    PressureSignal,
    priority_class,
)
from repro.cluster.loadgen import Arrival, generate_arrivals
from repro.cluster.router import ConsistentHashRing, route_requests
from repro.cluster.runner import ClusterReport, run_cluster, run_cluster_command
from repro.cluster.slo import LatencyHistogram, SloSummary, rollup
from repro.cluster.spec import ClusterSpec, ClusterSpecError

__all__ = [
    "Arrival",
    "BrownoutController",
    "ClusterOverloaded",
    "ClusterReport",
    "ClusterSpec",
    "ClusterSpecError",
    "ConsistentHashRing",
    "PressureSignal",
    "priority_class",
    "LatencyHistogram",
    "SloSummary",
    "generate_arrivals",
    "rollup",
    "route_requests",
    "run_cluster",
    "run_cluster_command",
]
