"""Guardian-style session-orderliness validation over cluster traces.

Guardian (PAPERS.md) checks that an enclave's *interface* is used in
protocol order — calls arrive in the states that allow them.  The cluster
gateway has exactly such a protocol: each upstream connection owns one
enclave session that must be registered with ``MSG_CONNECT`` **exactly
once** (re-registering leaks a 40 KiB in-enclave queue per offence), must
not carry request batches before it is registered, and must not send
anything after the gateway closed it.

The recovery machinery is precisely where such bugs hide — reconnect
paths that re-send ``MSG_CONNECT``, retry loops that race shutdown — so
the gateway mirrors its session lifecycle into the trace's fault table
(``session:connect`` / ``session:batch`` / ``session:close`` rows, see
:mod:`repro.cluster.proxy`) and this module folds those rows, per trace
and per gateway identity, into a verdict.  Violations surface as
analyser findings in ``sgxperf analyze --cluster``.

The fold is deterministic and streaming-friendly: rows are consumed in
trace order (the ``faults`` table is time-ordered) and the per-session
state is just three booleans and counters.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable

from repro.cluster.proxy import SESSION_BATCH, SESSION_CLOSE, SESSION_CONNECT

# Violation kinds (stable vocabulary for findings and tests).
DUPLICATE_CONNECT = "duplicate-connect"
BATCH_BEFORE_CONNECT = "batch-before-connect"
BATCH_AFTER_CLOSE = "batch-after-close"
DUPLICATE_CLOSE = "duplicate-close"
NEVER_CONNECTED = "never-connected"

_GATEWAY_RE = re.compile(r"^gateway (\d+):")


@dataclass(frozen=True)
class OrderlinessViolation:
    """One session-protocol violation observed in a trace."""

    trace: str
    gateway_id: int
    kind: str
    timestamp_ns: int
    detail: str

    def describe(self) -> str:
        """One-line finding text."""
        return (
            f"{self.kind}: gateway {self.gateway_id} at {self.timestamp_ns} ns"
            f" ({self.trace}): {self.detail}"
        )


@dataclass
class _SessionState:
    connects: int = 0
    batches: int = 0
    closed: bool = False


@dataclass
class SessionAudit:
    """Fold state + results for one trace's session rows."""

    trace: str = ""
    sessions: dict[int, _SessionState] = field(default_factory=dict)
    violations: list[OrderlinessViolation] = field(default_factory=list)
    rows: int = 0

    def _state(self, gateway_id: int) -> _SessionState:
        return self.sessions.setdefault(gateway_id, _SessionState())

    def _flag(self, gateway_id: int, kind: str, ts_ns: int, detail: str) -> None:
        self.violations.append(
            OrderlinessViolation(
                trace=self.trace,
                gateway_id=gateway_id,
                kind=kind,
                timestamp_ns=ts_ns,
                detail=detail,
            )
        )

    def add(self, fault) -> None:
        """Fold one fault row in (non-``session:*`` rows are ignored)."""
        if not fault.kind.startswith("session:"):
            return
        match = _GATEWAY_RE.match(fault.detail)
        if match is None:
            return
        self.rows += 1
        gateway_id = int(match.group(1))
        state = self._state(gateway_id)
        ts = fault.timestamp_ns
        if fault.kind == SESSION_CONNECT:
            state.connects += 1
            if state.connects > 1:
                self._flag(
                    gateway_id,
                    DUPLICATE_CONNECT,
                    ts,
                    f"MSG_CONNECT sent {state.connects} times "
                    "(each repeat leaks a 40 KiB in-enclave session queue)",
                )
        elif fault.kind == SESSION_BATCH:
            state.batches += 1
            if state.connects == 0:
                self._flag(
                    gateway_id,
                    BATCH_BEFORE_CONNECT,
                    ts,
                    "request batch sent on an unregistered session",
                )
            if state.closed:
                self._flag(
                    gateway_id,
                    BATCH_AFTER_CLOSE,
                    ts,
                    "request batch sent after the gateway closed the session",
                )
        elif fault.kind == SESSION_CLOSE:
            if state.closed:
                self._flag(
                    gateway_id, DUPLICATE_CLOSE, ts, "session closed twice"
                )
            state.closed = True

    def finish(self) -> None:
        """End-of-trace checks (batches on sessions that never connected)."""
        for gateway_id in sorted(self.sessions):
            state = self.sessions[gateway_id]
            if state.batches and state.connects == 0:
                self._flag(
                    gateway_id,
                    NEVER_CONNECTED,
                    0,
                    f"{state.batches} batch(es) but no MSG_CONNECT ever sent",
                )

    def summary(self) -> dict:
        """Counts for reports: sessions audited, rows folded, violations."""
        return {
            "trace": self.trace,
            "sessions": len(self.sessions),
            "rows": self.rows,
            "violations": len(self.violations),
        }


def validate_session_order(
    faults: Iterable, trace: str = ""
) -> SessionAudit:
    """Audit one trace's fault rows (already in time order)."""
    audit = SessionAudit(trace=trace)
    for fault in faults:
        audit.add(fault)
    audit.finish()
    return audit


def validate_trace_paths(
    trace_paths: Iterable[str],
) -> tuple[list[OrderlinessViolation], dict]:
    """Audit every per-shard trace; returns (violations, rollup summary).

    Paths are sorted so the merged report is deterministic regardless of
    discovery order — same contract as
    :func:`repro.cluster.slo.cluster_slo_from_traces`.
    """
    from repro.perf.database import TraceDatabase

    violations: list[OrderlinessViolation] = []
    totals = {"traces": 0, "sessions": 0, "rows": 0, "violations": 0}
    for path in sorted(trace_paths):
        with TraceDatabase(path, readonly=True) as db:
            audit = validate_session_order(db.fault_events(), trace=path)
        totals["traces"] += 1
        totals["sessions"] += len(audit.sessions)
        totals["rows"] += audit.rows
        totals["violations"] += len(audit.violations)
        violations.extend(audit.violations)
    return violations, totals


def render_orderliness(violations: list[OrderlinessViolation], totals: dict) -> str:
    """Terminal rendering for the analyzer's cluster mode."""
    lines = ["-- session orderliness (Guardian-style) " + "-" * 38]
    lines.append(
        f"{totals['traces']} trace(s), {totals['sessions']} gateway session(s), "
        f"{totals['rows']} lifecycle row(s) audited"
    )
    if not violations:
        lines.append("no session-protocol violations")
        return "\n".join(lines)
    for violation in violations:
        lines.append(f"VIOLATION {violation.describe()}")
    return "\n".join(lines)
