"""Cluster-wide SLO accounting: mergeable latency histograms and reports.

Shards are shared-nothing OS processes, so per-request latencies cannot be
shipped back raw without bloating the deterministic manifest.  Each shard
instead folds its latencies into a :class:`LatencyHistogram` — geometric
buckets with ``GROWTH``-factor spacing (≈2% relative resolution) — which
is compact, exactly mergeable, and deterministic.  Per-node and
cluster-wide p50/p99/p999 are all computed from histograms with the same
nearest-rank convention as :func:`repro.workloads.serving.percentile_ns`,
so one SLO schema covers the single-node campaigns and the cluster.

The module also extends the analyser to cluster scale:
:func:`cluster_slo_from_traces` merges the ``serve:*`` rows of per-shard
trace databases into the same per-node + cluster-wide report, so a traced
cluster run can be re-analysed offline, long after the run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.workloads.serving import NO_SAMPLES_NS, percentile_ns

# Geometric bucket growth: bucket i covers [GROWTH**i, GROWTH**(i+1)).
# 1.04 keeps the representative-value error under ~2% — far below the
# run-to-run spread of any real latency distribution.
GROWTH = 1.04
_LOG_GROWTH = math.log(GROWTH)

SLO_PERCENTILES = (50.0, 99.0, 99.9)


def bucket_index(latency_ns: int) -> int:
    """Histogram bucket for one latency sample."""
    if latency_ns <= 1:
        return 0
    return int(math.log(latency_ns) / _LOG_GROWTH)


def bucket_value_ns(index: int) -> int:
    """Representative latency (geometric bucket midpoint) for a bucket."""
    if index <= 0:
        return 1
    return int(round(GROWTH ** (index + 0.5)))


class LatencyHistogram:
    """Compact, mergeable latency distribution with deterministic quantiles."""

    def __init__(self, buckets: Optional[dict[int, int]] = None) -> None:
        self.buckets: dict[int, int] = dict(buckets or {})

    def add(self, latency_ns: int) -> None:
        """Fold one sample in.

        The :data:`~repro.workloads.serving.NO_SAMPLES_NS` sentinel is a
        silent no-op — a shard with zero samples must not poison a merge
        by materialising as a fake 1 ns request.  Any other negative is a
        caller bug and raises.
        """
        if latency_ns == NO_SAMPLES_NS:
            return
        if latency_ns < 0:
            raise ValueError(f"negative latency {latency_ns} ns is not a sample")
        index = bucket_index(latency_ns)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold another histogram in (commutative, associative)."""
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count
        return self

    @property
    def total(self) -> int:
        """Number of samples folded in."""
        return sum(self.buckets.values())

    def percentile_ns(self, pct: float) -> int:
        """Nearest-rank percentile over the bucketed samples.

        Same edge-case contract as
        :func:`repro.workloads.serving.percentile_ns`: empty histograms
        return :data:`~repro.workloads.serving.NO_SAMPLES_NS`.
        """
        total = self.total
        if total == 0:
            return NO_SAMPLES_NS
        if pct <= 0.0:
            return bucket_value_ns(min(self.buckets))
        if pct >= 100.0:
            return bucket_value_ns(max(self.buckets))
        rank = min(total, max(1, math.ceil(pct / 100.0 * total)))
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                return bucket_value_ns(index)
        return bucket_value_ns(max(self.buckets))  # unreachable

    # -- JSON round-trip (manifest metrics) ---------------------------------

    def as_dict(self) -> dict[str, int]:
        """JSON-safe form: stringified bucket index → count, sorted."""
        return {str(index): self.buckets[index] for index in sorted(self.buckets)}

    @classmethod
    def from_dict(cls, mapping: dict) -> "LatencyHistogram":
        """Rebuild from :meth:`as_dict` output.

        Defensive on the way back in from JSON: bucket indexes must be
        non-negative and counts positive (zero-count buckets are dropped
        so a round-trip never changes ``as_dict`` output or quantiles).
        """
        buckets: dict[int, int] = {}
        for index, count in mapping.items():
            index = int(index)
            count = int(count)
            if index < 0:
                raise ValueError(f"histogram bucket index {index} is negative")
            if count < 0:
                raise ValueError(f"histogram bucket count {count} is negative")
            if count:
                buckets[index] = count
        return cls(buckets)


@dataclass
class SloSummary:
    """Availability + latency SLO numbers for one scope (node or cluster)."""

    scope: str
    attempted: int = 0
    succeeded: int = 0
    retries: int = 0
    shed: int = 0
    failed: int = 0
    histogram: LatencyHistogram = field(default_factory=LatencyHistogram)

    @property
    def success_rate(self) -> float:
        """Fraction of attempted requests that eventually succeeded."""
        if self.attempted == 0:
            return 1.0
        return self.succeeded / self.attempted

    def merge(self, other: "SloSummary") -> "SloSummary":
        """Fold another scope's numbers in (for cluster-wide rollup)."""
        self.attempted += other.attempted
        self.succeeded += other.succeeded
        self.retries += other.retries
        self.shed += other.shed
        self.failed += other.failed
        self.histogram.merge(other.histogram)
        return self

    def as_dict(self) -> dict:
        """The shared SLO schema (superset of ``ServingStats.summary``)."""
        return {
            "workload": self.scope,
            "attempted": self.attempted,
            "succeeded": self.succeeded,
            "retries": self.retries,
            "shed": self.shed,
            "failed": self.failed,
            "success_rate": self.success_rate,
            "p50_ns": self.histogram.percentile_ns(50),
            "p99_ns": self.histogram.percentile_ns(99),
            "p999_ns": self.histogram.percentile_ns(99.9),
        }

    @classmethod
    def from_metrics(cls, scope: str, metrics: dict) -> "SloSummary":
        """Rebuild a shard's summary from its sweep-task metrics."""
        return cls(
            scope=scope,
            attempted=int(metrics.get("attempted", 0)),
            succeeded=int(metrics.get("succeeded", 0)),
            retries=int(metrics.get("retries", 0)),
            shed=int(metrics.get("shed", 0)),
            failed=int(metrics.get("failed", 0)),
            histogram=LatencyHistogram.from_dict(metrics.get("latency_hist", {})),
        )


def rollup(summaries: Iterable[SloSummary], scope: str = "cluster") -> SloSummary:
    """Merge per-node summaries into one cluster-wide summary."""
    total = SloSummary(scope=scope)
    for summary in summaries:
        total.merge(summary)
    return total


def render_slo_table(summaries: list[SloSummary]) -> str:
    """Fixed-width SLO table: one row per scope (deterministic)."""
    header = (
        f"{'scope':<22} {'ok':>8} {'attempted':>10} {'avail':>8} "
        f"{'retries':>8} {'shed':>6} {'failed':>7} "
        f"{'p50':>10} {'p99':>11} {'p999':>11}"
    )
    lines = [header]
    for summary in summaries:
        entry = summary.as_dict()
        lines.append(
            f"{entry['workload']:<22} {entry['succeeded']:>8} "
            f"{entry['attempted']:>10} {entry['success_rate']:>8.2%} "
            f"{entry['retries']:>8} {entry['shed']:>6} {entry['failed']:>7} "
            f"{entry['p50_ns']:>10} {entry['p99_ns']:>11} {entry['p999_ns']:>11}"
        )
    return "\n".join(lines)


# -- analyser extension: merge per-shard traces ------------------------------


def cluster_slo_from_traces(trace_paths: Iterable[str]) -> list[dict]:
    """Merge per-shard trace databases into the cluster SLO report.

    Reads each trace's ``serve:*`` fault rows through the analyser's
    :class:`~repro.perf.analysis.report.FaultAccumulator` (so numbers match
    `sgxperf analyze --availability` on the individual trace exactly) and
    appends a synthesised cluster-wide entry with the merged latency set.
    Returns the per-workload dicts followed by the ``cluster`` dict.
    """
    from repro.perf.analysis.report import FaultAccumulator
    from repro.perf.database import TraceDatabase

    per_node = FaultAccumulator()
    latencies: list[int] = []
    totals = {"attempted": 0, "succeeded": 0, "retries": 0, "shed": 0, "failed": 0}
    for path in sorted(trace_paths):
        with TraceDatabase(path, readonly=True) as db:
            for fault in db.fault_events():
                per_node.add(fault)
                if not fault.kind.startswith("serve:"):
                    continue
                if fault.kind == "serve:request":
                    totals["attempted"] += 1
                    totals["succeeded"] += 1
                    detail = fault.detail
                    if detail.startswith("ok +") and detail.endswith(" ns"):
                        latencies.append(int(detail[4:-3]))
                elif fault.kind == "serve:retry":
                    totals["retries"] += 1
                elif fault.kind == "serve:shed":
                    totals["shed"] += 1
                elif fault.kind == "serve:failed":
                    totals["attempted"] += 1
                    totals["failed"] += 1
    entries = per_node.availability()
    latencies.sort()
    cluster = dict(totals)
    cluster["workload"] = "cluster"
    cluster["success_rate"] = (
        cluster["succeeded"] / cluster["attempted"] if cluster["attempted"] else 1.0
    )
    cluster["p50_ns"] = percentile_ns(latencies, 50)
    cluster["p99_ns"] = percentile_ns(latencies, 99)
    cluster["p999_ns"] = percentile_ns(latencies, 99.9)
    entries.append(cluster)
    return entries


def render_trace_slo(entries: list[dict]) -> str:
    """Render :func:`cluster_slo_from_traces` output for a terminal."""
    lines = ["-- cluster availability (from traces) " + "-" * 40]
    for entry in entries:
        lines.append(
            f"{entry['workload']}: {entry['succeeded']}/{entry['attempted']} "
            f"requests ok ({entry['success_rate']:.2%}), "
            f"{entry['retries']} retries, {entry['shed']} shed, "
            f"{entry['failed']} failed"
        )
        lines.append(
            f"  latency p50 {entry['p50_ns']} ns, p99 {entry['p99_ns']} ns, "
            f"p999 {entry['p999_ns']} ns"
        )
    return "\n".join(lines)
