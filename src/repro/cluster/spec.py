"""Declarative description of one sharded serving cluster run.

A :class:`ClusterSpec` is plain frozen data — everything a run needs is a
scalar, so the spec flattens losslessly into :mod:`repro.sweep` task
parameters and back.  Every derived quantity (arrival horizon, per-node
seeds, the node-loss window) is a pure function of the spec, which is what
makes the whole cluster deterministic: any worker process, at any
``--jobs``, reconstructs the identical schedule, routing table and chaos
plan from the same few numbers.

The default chaos model composes the serving-path network chaos of
:func:`repro.faults.netcampaign.default_chaos_plan` (per-node resets,
delay spikes, short writes, a brief cluster-wide partition blip) with a
**node-loss window**: one node's network is partitioned for a slice of the
run, and the router fails arrivals over to the surviving nodes
(§6 of the paper scales SecureKeeper workers; we additionally take one
away mid-run and ask the cluster to hold its SLO).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace
from typing import Optional

VARIANTS = ("securekeeper", "talos")
POLICIES = ("hash", "least-loaded")

# Per-node open-loop arrival rates (requests per virtual second) used when
# the spec does not pin one.  SecureKeeper requests cost two short ecalls;
# a TaLoS request is a full TLS handshake served by a single worker, so its
# sustainable rate is far lower.
DEFAULT_NODE_RATE_RPS = {"securekeeper": 25_000.0, "talos": 700.0}


class ClusterSpecError(ValueError):
    """The spec cannot describe a runnable cluster."""


@dataclass(frozen=True)
class ClusterSpec:
    """One cluster scenario: topology, load, routing and chaos knobs."""

    variant: str = "securekeeper"
    nodes: int = 4
    clients: int = 10_000
    ops_per_client: int = 2
    policy: str = "hash"
    seed: int = 0
    # Cluster-wide open-loop arrival rate (requests / virtual second);
    # ``0`` selects the per-variant default scaled by the node count.
    rate_rps: float = 0.0
    # Router/mux shape: upstream connections per node and the batch the
    # mux coalesces into one multiplexed send.
    mux_connections: int = 4
    batch_size: int = 8
    # Admission control: queued requests per node beyond this are shed.
    admission_limit: int = 512
    payload_bytes: int = 128
    client_timeout_ns: int = 20_000_000
    # Chaos: per-node network chaos plus one node partitioned ("killed")
    # for the window [kill_start_frac, kill_end_frac) of the horizon.
    chaos: bool = True
    kill_node: int = -1  # -1: pick the last node (when chaos and nodes > 1)
    kill_start_frac: float = 0.45
    kill_end_frac: float = 0.60

    def __post_init__(self) -> None:
        if self.variant not in VARIANTS:
            raise ClusterSpecError(
                f"unknown variant {self.variant!r}; pick from {VARIANTS}"
            )
        if self.policy not in POLICIES:
            raise ClusterSpecError(
                f"unknown policy {self.policy!r}; pick from {POLICIES}"
            )
        if self.nodes < 1:
            raise ClusterSpecError(f"need at least one node, got {self.nodes}")
        if self.clients < 1 or self.ops_per_client < 1:
            raise ClusterSpecError("need at least one client and one op per client")
        if self.kill_node >= self.nodes:
            raise ClusterSpecError(
                f"kill_node {self.kill_node} out of range for {self.nodes} node(s)"
            )
        if not 0.0 <= self.kill_start_frac < self.kill_end_frac <= 1.0:
            raise ClusterSpecError(
                "kill window fractions must satisfy 0 <= start < end <= 1"
            )

    # -- derived quantities (all pure) --------------------------------------

    @property
    def total_requests(self) -> int:
        """Requests the load generator schedules across the cluster."""
        return self.clients * self.ops_per_client

    @property
    def arrival_rate_rps(self) -> float:
        """Effective cluster-wide open-loop arrival rate."""
        if self.rate_rps > 0.0:
            return float(self.rate_rps)
        return DEFAULT_NODE_RATE_RPS[self.variant] * self.nodes

    @property
    def horizon_ns(self) -> int:
        """Expected span of the arrival schedule in virtual nanoseconds."""
        return int(self.total_requests / self.arrival_rate_rps * 1e9)

    @property
    def killed_node(self) -> Optional[int]:
        """Index of the node lost mid-run, or ``None`` when none is."""
        if not self.chaos or self.nodes < 2:
            return None
        if self.kill_node >= 0:
            return self.kill_node
        return self.nodes - 1

    @property
    def kill_window_ns(self) -> Optional[tuple[int, int]]:
        """Virtual-time window during which the killed node is gone."""
        if self.killed_node is None:
            return None
        return (
            int(self.horizon_ns * self.kill_start_frac),
            int(self.horizon_ns * self.kill_end_frac),
        )

    def down_windows(self) -> dict[int, tuple[int, int]]:
        """node index → down window, for the router's failover logic."""
        if self.killed_node is None:
            return {}
        return {self.killed_node: self.kill_window_ns}

    def node_seed(self, node_index: int) -> int:
        """Independent simulation seed for one node's isolated kernel."""
        digest = hashlib.sha256(
            f"cluster:{self.seed}:node:{node_index}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") % (2**31)

    # -- (de)serialisation ---------------------------------------------------

    def to_params(self) -> dict:
        """Flatten into scalar sweep parameters (seed travels separately)."""
        params = {f.name: getattr(self, f.name) for f in fields(self)}
        del params["seed"]  # the sweep grid owns the seed axis
        return params

    @classmethod
    def from_params(cls, params: dict) -> "ClusterSpec":
        """Rebuild the spec a worker received as flat task parameters."""
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in params.items() if k in names})

    @classmethod
    def from_dict(cls, mapping: dict) -> "ClusterSpec":
        """Build from a JSON-style mapping (unknown keys are an error)."""
        names = {f.name for f in fields(cls)}
        unknown = sorted(set(mapping) - names)
        if unknown:
            raise ClusterSpecError(f"unknown spec key(s): {', '.join(unknown)}")
        return cls(**mapping)

    def describe(self) -> str:
        """One-line human summary."""
        parts = [
            f"{self.variant} × {self.nodes} node(s), policy={self.policy}",
            f"{self.clients} clients × {self.ops_per_client} op(s)",
            f"rate {self.arrival_rate_rps:.0f}/s over {self.horizon_ns / 1e6:.1f} ms",
        ]
        if self.killed_node is not None:
            start, end = self.kill_window_ns
            parts.append(
                f"node {self.killed_node} down {start / 1e6:.1f}-{end / 1e6:.1f} ms"
            )
        return ", ".join(parts)

    def canonical_json(self) -> str:
        """Stable JSON form (used in manifests and digests)."""
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def with_overrides(spec: ClusterSpec, **overrides) -> ClusterSpec:
    """A copy of ``spec`` with the given fields replaced (re-validated)."""
    return replace(spec, **overrides)
