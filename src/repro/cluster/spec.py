"""Declarative description of one sharded serving cluster run.

A :class:`ClusterSpec` is plain frozen data — everything a run needs is a
scalar, so the spec flattens losslessly into :mod:`repro.sweep` task
parameters and back.  Every derived quantity (arrival horizon, per-node
seeds, the node-loss window) is a pure function of the spec, which is what
makes the whole cluster deterministic: any worker process, at any
``--jobs``, reconstructs the identical schedule, routing table and chaos
plan from the same few numbers.

The default chaos model composes the serving-path network chaos of
:func:`repro.faults.netcampaign.default_chaos_plan` (per-node resets,
delay spikes, short writes, a brief cluster-wide partition blip) with a
**node-loss window**: one node's network is partitioned for a slice of the
run, and the router fails arrivals over to the surviving nodes
(§6 of the paper scales SecureKeeper workers; we additionally take one
away mid-run and ask the cluster to hold its SLO).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace
from typing import Optional

VARIANTS = ("securekeeper", "talos")
POLICIES = ("hash", "least-loaded")

# Per-node open-loop arrival rates (requests per virtual second) used when
# the spec does not pin one.  SecureKeeper requests cost two short ecalls;
# a TaLoS request is a full TLS handshake served by a single worker, so its
# sustainable rate is far lower.
DEFAULT_NODE_RATE_RPS = {"securekeeper": 25_000.0, "talos": 700.0}


class ClusterSpecError(ValueError):
    """The spec cannot describe a runnable cluster."""


@dataclass(frozen=True)
class ClusterSpec:
    """One cluster scenario: topology, load, routing and chaos knobs."""

    variant: str = "securekeeper"
    nodes: int = 4
    clients: int = 10_000
    ops_per_client: int = 2
    policy: str = "hash"
    seed: int = 0
    # Cluster-wide open-loop arrival rate (requests / virtual second);
    # ``0`` selects the per-variant default scaled by the node count.
    rate_rps: float = 0.0
    # Router/mux shape: upstream connections per node and the batch the
    # mux coalesces into one multiplexed send.
    mux_connections: int = 4
    batch_size: int = 8
    # Admission control: queued requests per node beyond this are shed.
    admission_limit: int = 512
    payload_bytes: int = 128
    client_timeout_ns: int = 20_000_000
    # Replication factor: every write lands on ``replication`` distinct
    # ring nodes (primary + R-1 replicas), so reads can fail over while the
    # primary is suspected.  Clamped to the node count.
    replication: int = 2
    # Chaos: per-node network chaos plus one or more nodes partitioned
    # ("killed") for the window [kill_start_frac, kill_end_frac) of the
    # horizon.  ``kill_count > 1`` kills that many nodes in the *same*
    # window (a correlated failure — rack loss, AZ outage); ``flaps > 0``
    # splits the window into that many down pulses separated by equal up
    # gaps (a flapping node, the failure detector's hardest customer).
    chaos: bool = True
    kill_node: int = -1  # -1: pick the last node (when chaos and nodes > 1)
    kill_count: int = 1
    kill_start_frac: float = 0.45
    kill_end_frac: float = 0.60
    flaps: int = 0
    # Asymmetric kill: requests still reach the killed node(s) but replies
    # stall — the node looks dead from outside while processing inside.
    asym: bool = False
    # Gray failure: the first ``slow_nodes`` nodes serve every socket op
    # ``slow_extra_ns`` slower inside [slow_start_frac, slow_end_frac).
    slow_nodes: int = 0
    slow_start_frac: float = 0.10
    slow_end_frac: float = 0.35
    slow_extra_ns: int = 300_000
    # Heartbeat failure detector: the gateway probes every node each
    # interval (0 = auto: horizon/200) and suspects a node after
    # ``suspect_after`` consecutive lost probes (or 2x that many
    # consecutive *late* probes — gray failures), un-suspecting it after
    # ``recover_after`` consecutive healthy probes.
    heartbeat_interval_ns: int = 0
    suspect_after: int = 3
    recover_after: int = 2
    # Resource pressure: a Stress-SGX-style noisy neighbour sharing every
    # node's EPC for [stressor_start_frac, stressor_end_frac) of the
    # horizon ("" = none), and an optional scaled-down EPC (0 = the full
    # hardware pool) so paging pressure is reachable at test scale.
    stressor: str = ""
    stressor_intensity: float = 1.0
    stressor_start_frac: float = 0.20
    stressor_end_frac: float = 0.80
    epc_pages: int = 0
    # Graceful degradation: the gateway brownout controller (priority-
    # classed admission + pressure-proportional batching).  ``False`` is
    # the ablation: same pressure, cliff-edge admission only.
    brownout: bool = True

    def __post_init__(self) -> None:
        if self.variant not in VARIANTS:
            raise ClusterSpecError(
                f"unknown variant {self.variant!r}; pick from {VARIANTS}"
            )
        if self.policy not in POLICIES:
            raise ClusterSpecError(
                f"unknown policy {self.policy!r}; pick from {POLICIES}"
            )
        if self.nodes < 1:
            raise ClusterSpecError(f"need at least one node, got {self.nodes}")
        if self.clients < 1 or self.ops_per_client < 1:
            raise ClusterSpecError("need at least one client and one op per client")
        if self.replication < 1:
            raise ClusterSpecError(
                f"replication factor must be >= 1, got {self.replication}"
            )
        if self.kill_node >= self.nodes:
            raise ClusterSpecError(
                f"kill_node {self.kill_node} out of range for {self.nodes} node(s)"
            )
        if not 1 <= self.kill_count <= self.nodes:
            raise ClusterSpecError(
                f"kill_count {self.kill_count} out of range for {self.nodes} node(s)"
            )
        if self.flaps < 0:
            raise ClusterSpecError(f"flaps must be >= 0, got {self.flaps}")
        if not 0 <= self.slow_nodes <= self.nodes:
            raise ClusterSpecError(
                f"slow_nodes {self.slow_nodes} out of range for {self.nodes} node(s)"
            )
        if not 0.0 <= self.kill_start_frac < self.kill_end_frac <= 1.0:
            raise ClusterSpecError(
                "kill window fractions must satisfy 0 <= start < end <= 1"
            )
        if not 0.0 <= self.slow_start_frac < self.slow_end_frac <= 1.0:
            raise ClusterSpecError(
                "slow window fractions must satisfy 0 <= start < end <= 1"
            )
        if self.suspect_after < 1 or self.recover_after < 1:
            raise ClusterSpecError(
                "detector thresholds suspect_after/recover_after must be >= 1"
            )
        if self.stressor:
            from repro.workloads.stressors import STRESSOR_NAMES

            if self.stressor not in STRESSOR_NAMES:
                raise ClusterSpecError(
                    f"unknown stressor {self.stressor!r}; "
                    f"pick from {STRESSOR_NAMES}"
                )
            if self.stressor_intensity <= 0.0:
                raise ClusterSpecError(
                    f"stressor intensity must be > 0, got {self.stressor_intensity}"
                )
            if not 0.0 <= self.stressor_start_frac < self.stressor_end_frac <= 1.0:
                raise ClusterSpecError(
                    "stressor window fractions must satisfy 0 <= start < end <= 1"
                )
        if self.epc_pages < 0:
            raise ClusterSpecError(
                f"epc_pages must be >= 0 (0 = full pool), got {self.epc_pages}"
            )

    # -- derived quantities (all pure) --------------------------------------

    @property
    def total_requests(self) -> int:
        """Requests the load generator schedules across the cluster."""
        return self.clients * self.ops_per_client

    @property
    def write_amplification(self) -> float:
        """Shard ops per client op, once replica writes are counted.

        Half the SecureKeeper ops are creates and each create fans out to
        ``R - 1`` replicas, so R=2 turns 1.0 client op into 1.25 shard
        ops.  TaLoS is stateless — nothing to replicate.
        """
        if self.variant == "talos":
            return 1.0
        return 1.0 + (self.effective_replication - 1) / 2.0

    @property
    def provisioned_nodes(self) -> int:
        """Node count the default rate is provisioned against.

        A self-healing cluster must carry its load on the nodes that
        survive the failure domain it claims to tolerate — during a kill
        window the survivors absorb the victims' share, so provisioning
        for all N nodes means running the survivors past saturation
        exactly when they are busiest.  Chaos-off clusters (and layouts
        too small to kill anything) provision for every node.
        """
        if not self.killed_nodes:
            return self.nodes
        return max(1, self.nodes - len(self.killed_nodes))

    @property
    def arrival_rate_rps(self) -> float:
        """Effective cluster-wide open-loop arrival rate.

        The per-variant default is a *per-shard* capacity, so the default
        rate deflates by the replication write amplification and scales
        with :attr:`provisioned_nodes` (N - kill_count under chaos) — a
        cluster provisioned for R=2 with one expendable node runs its
        shards at survivable utilisation, just like real capacity
        planning does.  An explicit ``rate_rps`` is always respected
        as-is.
        """
        if self.rate_rps > 0.0:
            return float(self.rate_rps)
        return (
            DEFAULT_NODE_RATE_RPS[self.variant]
            * self.provisioned_nodes
            / self.write_amplification
        )

    @property
    def horizon_ns(self) -> int:
        """Expected span of the arrival schedule in virtual nanoseconds."""
        return int(self.total_requests / self.arrival_rate_rps * 1e9)

    @property
    def effective_replication(self) -> int:
        """Replication factor actually usable on this topology."""
        return min(self.replication, self.nodes)

    @property
    def killed_node(self) -> Optional[int]:
        """Index of the first node lost mid-run, or ``None`` when none is."""
        nodes = self.killed_nodes
        return nodes[0] if nodes else None

    @property
    def killed_nodes(self) -> tuple[int, ...]:
        """Indices of the nodes lost in the kill window (correlated kill).

        ``kill_count`` consecutive nodes starting at ``kill_node`` (or, by
        default, ending at the last node) go down together.  At least one
        node always survives: kills only happen with two or more nodes, and
        validation caps ``kill_count`` at ``nodes`` — the all-nodes case is
        the :class:`ClusterUnavailable` path the router must survive.
        """
        if not self.chaos or self.nodes < 2:
            return ()
        first = self.kill_node if self.kill_node >= 0 else self.nodes - self.kill_count
        first = max(0, first)
        return tuple(
            sorted((first + i) % self.nodes for i in range(self.kill_count))
        )

    @property
    def kill_window_ns(self) -> Optional[tuple[int, int]]:
        """Virtual-time window during which the killed node(s) are gone."""
        if not self.killed_nodes:
            return None
        return (
            int(self.horizon_ns * self.kill_start_frac),
            int(self.horizon_ns * self.kill_end_frac),
        )

    def _pulses(self, window: tuple[int, int]) -> tuple[tuple[int, int], ...]:
        """Split ``window`` into ``flaps`` down pulses with equal up gaps."""
        if self.flaps <= 0:
            return (window,)
        start, end = window
        # n pulses + (n-1) equal gaps; a flapping node is down for the
        # pulses and back up in between, re-triggering detection each time.
        span = end - start
        slot = span // (2 * self.flaps - 1)
        pulses = []
        for i in range(self.flaps):
            p_start = start + 2 * i * slot
            p_end = min(end, p_start + slot)
            if p_end > p_start:
                pulses.append((p_start, p_end))
        return tuple(pulses)

    def down_windows(self) -> dict[int, tuple[tuple[int, int], ...]]:
        """node index → down windows (ground truth, for chaos injection).

        This is the *chaos schedule*, not routing state: node shards use it
        to drive partition windows, and tests compare the failure
        detector's suspicion intervals against it.  The router never reads
        it — routing runs purely on heartbeat-detected suspicion.
        """
        window = self.kill_window_ns
        if window is None:
            return {}
        pulses = self._pulses(window)
        return {node: pulses for node in self.killed_nodes}

    def slow_nodes_set(self) -> tuple[int, ...]:
        """Indices of the gray-failure (slow, not dead) nodes."""
        if not self.chaos or self.slow_nodes <= 0:
            return ()
        return tuple(range(min(self.slow_nodes, self.nodes)))

    def slow_window_ns(self) -> Optional[tuple[int, int]]:
        """Virtual-time window during which slow nodes drag, if any."""
        if not self.slow_nodes_set():
            return None
        return (
            int(self.horizon_ns * self.slow_start_frac),
            int(self.horizon_ns * self.slow_end_frac),
        )

    def slow_windows(self) -> dict[int, tuple[tuple[int, int], ...]]:
        """node index → gray-failure slow windows (ground truth)."""
        window = self.slow_window_ns()
        if window is None:
            return {}
        return {node: (window,) for node in self.slow_nodes_set()}

    # Auto heartbeat cap: detection lag must stay absolute, not scale with
    # the horizon — at a long horizon a 1/200 interval would trap hundreds
    # of requests on a dead shard before suspicion triggers.
    HEARTBEAT_CAP_NS = 500_000

    @property
    def heartbeat_ns(self) -> int:
        """Effective probe interval (auto: horizon/200, capped at 500 µs)."""
        if self.heartbeat_interval_ns > 0:
            return self.heartbeat_interval_ns
        return max(1, min(self.horizon_ns // 200, self.HEARTBEAT_CAP_NS))

    def stressor_window_ns(self) -> Optional[tuple[int, int]]:
        """Virtual-time window the noisy neighbour hammers, if any."""
        if not self.stressor:
            return None
        return (
            int(self.horizon_ns * self.stressor_start_frac),
            int(self.horizon_ns * self.stressor_end_frac),
        )

    def node_seed(self, node_index: int) -> int:
        """Independent simulation seed for one node's isolated kernel."""
        digest = hashlib.sha256(
            f"cluster:{self.seed}:node:{node_index}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") % (2**31)

    # -- (de)serialisation ---------------------------------------------------

    def to_params(self) -> dict:
        """Flatten into scalar sweep parameters (seed travels separately)."""
        params = {f.name: getattr(self, f.name) for f in fields(self)}
        del params["seed"]  # the sweep grid owns the seed axis
        return params

    @classmethod
    def from_params(cls, params: dict) -> "ClusterSpec":
        """Rebuild the spec a worker received as flat task parameters."""
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in params.items() if k in names})

    @classmethod
    def from_dict(cls, mapping: dict) -> "ClusterSpec":
        """Build from a JSON-style mapping (unknown keys are an error)."""
        names = {f.name for f in fields(cls)}
        unknown = sorted(set(mapping) - names)
        if unknown:
            raise ClusterSpecError(f"unknown spec key(s): {', '.join(unknown)}")
        return cls(**mapping)

    def describe(self) -> str:
        """One-line human summary."""
        parts = [
            f"{self.variant} × {self.nodes} node(s), policy={self.policy}",
            f"{self.clients} clients × {self.ops_per_client} op(s)",
            f"rate {self.arrival_rate_rps:.0f}/s over {self.horizon_ns / 1e6:.1f} ms",
        ]
        if self.killed_nodes:
            start, end = self.kill_window_ns
            names = ",".join(str(n) for n in self.killed_nodes)
            flavor = " (asym)" if self.asym else ""
            flapping = f" × {self.flaps} flaps" if self.flaps else ""
            parts.append(
                f"node(s) {names} down {start / 1e6:.1f}-{end / 1e6:.1f} ms"
                f"{flapping}{flavor}"
            )
        if self.slow_nodes_set():
            start, end = self.slow_window_ns()
            names = ",".join(str(n) for n in self.slow_nodes_set())
            parts.append(
                f"node(s) {names} slow {start / 1e6:.1f}-{end / 1e6:.1f} ms"
            )
        if self.stressor:
            start, end = self.stressor_window_ns()
            epc = f", EPC {self.epc_pages}p" if self.epc_pages else ""
            brownout = "on" if self.brownout else "OFF"
            parts.append(
                f"stressor {self.stressor} x{self.stressor_intensity:g} "
                f"{start / 1e6:.1f}-{end / 1e6:.1f} ms{epc}, brownout {brownout}"
            )
        parts.append(f"R={self.effective_replication}")
        return ", ".join(parts)

    def canonical_json(self) -> str:
        """Stable JSON form (used in manifests and digests)."""
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def with_overrides(spec: ClusterSpec, **overrides) -> ClusterSpec:
    """A copy of ``spec`` with the given fields replaced (re-validated)."""
    return replace(spec, **overrides)
