"""Graceful degradation under EPC pressure: the gateway brownout controller.

A node under EPC pressure does not fail — it *slows*: every page load
evicts (EWB) and reloads (ELDU), ecalls stretch, the gateway backlog
climbs, and an admission limit tuned for the happy path sheds whatever
arrives next, writes and reads alike.  The brownout controller replaces
that cliff with a *priority-ordered* slope, driven by the one signal the
paging machinery already produces:

* **pressure signal** — the shard's EWB+ELDU count, sampled on the
  virtual clock and folded into an EWMA paging rate (pages per virtual
  second).  No extra threads, no randomness: the dispatcher samples at
  each arrival it processes, so the signal is a pure function of the
  simulation schedule and replays byte-identically.
* **levels with hysteresis** — ``normal`` → ``brownout`` (rate above
  ``enter_rate``) → ``deep`` (above ``deep_rate``), stepping back only
  after the rate falls below half the entry threshold *and* a minimum
  dwell has passed, so the controller cannot flap across a noisy signal.
* **priority-classed admission** — arrivals are classed ``write``
  (client creates/fills, the acknowledged-durability traffic), ``read``
  (client gets/fetches) and ``background`` (replica copies, hinted
  handoffs).  Brownout sheds background first, deep brownout also sheds
  reads; writes are only ever shed at the hard ``admission_limit``.
  Refusals are typed — :class:`ClusterOverloaded` carries the class and
  level — and every shed writes a trace row naming its class, so the
  strict shed order is assertable from the trace afterwards.
* **pressure-proportional batching** — above ``enter_rate`` the gateway
  batch limit scales down as ``enter_rate / rate``: smaller batches hold
  fewer victim-able pages per upstream exchange and return capacity to
  the paging-bound enclave sooner.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cluster.router import (
    OP_CREATE,
    OP_FILL,
    ROLE_CLIENT,
)

# Priority classes, in strict shed order (background goes first).
PRIORITY_WRITE = "write"
PRIORITY_READ = "read"
PRIORITY_BACKGROUND = "background"
PRIORITY_ORDER = (PRIORITY_BACKGROUND, PRIORITY_READ, PRIORITY_WRITE)

# Controller levels.
LEVEL_NORMAL = 0
LEVEL_BROWNOUT = 1
LEVEL_DEEP = 2
LEVEL_NAMES = {LEVEL_NORMAL: "normal", LEVEL_BROWNOUT: "brownout", LEVEL_DEEP: "deep"}

# Trace-row kinds (written through ``ServingStats.record_event`` when the
# shard is traced; the priority-order test folds over these).
BROWNOUT_LEVEL = "brownout:level"
BROWNOUT_SHED = "brownout:shed"

# Default thresholds, in EPC pages per virtual second.  One EWB/ELDU pair
# costs ~14 µs of device time, so ~70k pages/s means the shard spends
# roughly its whole budget paging; brownout engages when about a third of
# the budget burns on paging and deep brownout when paging dominates.
ENTER_RATE_PPS = 25_000.0
DEEP_RATE_PPS = 55_000.0
# Hysteresis: step a level down only below exit_fraction * entry rate.
EXIT_FRACTION = 0.5
# Minimum dwell at a level before stepping back down (virtual ns).
MIN_DWELL_NS = 2_000_000
# Pressure sampling period (virtual ns) and EWMA smoothing factor.
SAMPLE_NS = 250_000
EWMA_ALPHA = 0.35


class ClusterOverloaded(Exception):
    """Typed admission refusal: the gateway shed this request.

    Carries what a client (or the replication machinery) needs to react
    sensibly: the priority class that was refused, the controller level
    that refused it, and the backlog at refusal time.
    """

    def __init__(self, priority: str, level: int, backlog: int, reason: str) -> None:
        super().__init__(
            f"{reason}: {priority} shed at {LEVEL_NAMES[level]} (backlog {backlog})"
        )
        self.priority = priority
        self.level = level
        self.backlog = backlog
        self.reason = reason


def priority_class(op: str, role: str) -> str:
    """Admission priority for one routed request.

    Replica copies and hinted handoffs are background work — shedding one
    narrows the durability margin (read repair restores it later) but
    never breaks a client promise.  Client writes carry acknowledgements
    the cluster must not lose, so they outrank reads.
    """
    if role != ROLE_CLIENT:
        return PRIORITY_BACKGROUND
    if op in (OP_CREATE, OP_FILL):
        return PRIORITY_WRITE
    return PRIORITY_READ


class PressureSignal:
    """EWMA paging rate (pages per virtual second) from the driver stats.

    Sampled opportunistically: the caller invokes :meth:`observe` from
    its own (deterministically scheduled) loop, and the signal folds a
    new sample only once per ``sample_ns`` of virtual time.
    """

    def __init__(
        self,
        stats: dict,
        *,
        sample_ns: int = SAMPLE_NS,
        alpha: float = EWMA_ALPHA,
    ) -> None:
        self._stats = stats
        self.sample_ns = sample_ns
        self.alpha = alpha
        self._last_ns = 0
        self._last_pages = 0
        self.rate_pps = 0.0
        self.peak_pps = 0.0

    def _paged(self) -> int:
        return int(self._stats.get("page_in", 0)) + int(self._stats.get("page_out", 0))

    def observe(self, now_ns: int) -> float:
        """Fold the paging counters at ``now_ns``; returns the EWMA rate."""
        elapsed = now_ns - self._last_ns
        if elapsed < self.sample_ns:
            return self.rate_pps
        paged = self._paged()
        instant = (paged - self._last_pages) / elapsed * 1e9
        self.rate_pps = self.alpha * instant + (1.0 - self.alpha) * self.rate_pps
        self.peak_pps = max(self.peak_pps, self.rate_pps)
        self._last_ns = now_ns
        self._last_pages = paged
        return self.rate_pps


class BrownoutController:
    """Hysteretic pressure → admission/batch policy for one gateway.

    ``record`` (optional) receives ``(kind, detail)`` for every level
    transition and brownout shed, wired to the shard's
    :meth:`~repro.workloads.serving.ServingStats.record_event` so traced
    runs carry the evidence rows.
    """

    def __init__(
        self,
        signal: PressureSignal,
        *,
        enter_rate: float = ENTER_RATE_PPS,
        deep_rate: float = DEEP_RATE_PPS,
        exit_fraction: float = EXIT_FRACTION,
        min_dwell_ns: int = MIN_DWELL_NS,
        congestion_backlog: int = 0,
        record: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        self.signal = signal
        self.enter_rate = enter_rate
        self.deep_rate = deep_rate
        self.exit_fraction = exit_fraction
        self.min_dwell_ns = min_dwell_ns
        self.congestion_backlog = congestion_backlog
        self.record = record
        self.level = LEVEL_NORMAL
        self.transitions = 0
        self.deep_transitions = 0
        self._level_since_ns = 0

    @property
    def level_name(self) -> str:
        return LEVEL_NAMES[self.level]

    def _set_level(self, level: int, now_ns: int) -> None:
        if level == self.level:
            return
        if level > self.level:
            self.transitions += 1
            if level == LEVEL_DEEP:
                self.deep_transitions += 1
        previous = self.level
        self.level = level
        self._level_since_ns = now_ns
        if self.record is not None:
            self.record(
                BROWNOUT_LEVEL,
                f"{LEVEL_NAMES[previous]} -> {LEVEL_NAMES[level]} "
                f"at {self.signal.rate_pps:.0f} pages/s",
            )

    def observe(self, now_ns: int) -> int:
        """Sample pressure and update the level; returns the level."""
        rate = self.signal.observe(now_ns)
        # Escalation is immediate — pressure does not wait politely.
        if rate >= self.deep_rate:
            self._set_level(LEVEL_DEEP, now_ns)
            return self.level
        if rate >= self.enter_rate:
            if self.level < LEVEL_BROWNOUT:
                self._set_level(LEVEL_BROWNOUT, now_ns)
            elif self.level == LEVEL_DEEP:
                self._maybe_step_down(LEVEL_BROWNOUT, self.deep_rate, rate, now_ns)
            return self.level
        # Below the entry band: de-escalate one level at a time, with
        # dwell + hysteresis so a noisy signal cannot flap the gateway.
        if self.level == LEVEL_DEEP:
            self._maybe_step_down(LEVEL_BROWNOUT, self.deep_rate, rate, now_ns)
        elif self.level == LEVEL_BROWNOUT:
            self._maybe_step_down(LEVEL_NORMAL, self.enter_rate, rate, now_ns)
        return self.level

    def _maybe_step_down(
        self, target: int, entry_rate: float, rate: float, now_ns: int
    ) -> None:
        if rate > entry_rate * self.exit_fraction:
            return
        if now_ns - self._level_since_ns < self.min_dwell_ns:
            return
        self._set_level(target, now_ns)

    # -- policy --------------------------------------------------------------

    def admit(self, priority: str, backlog: int) -> None:
        """Admission check; raises :class:`ClusterOverloaded` to refuse.

        Writes are never refused here — the hard ``admission_limit``
        (checked by the caller) is their only backstop — which is what
        makes the shed order strict: background drops at ``brownout``,
        reads drop at ``deep``, writes only ever drop at the limit.

        Pressure alone does not shed: while fewer than
        ``congestion_backlog`` requests are queued the shard is keeping
        up despite the paging, and refusing work then would manufacture
        an outage the pressure never caused.
        """
        if backlog < self.congestion_backlog:
            return
        if self.level >= LEVEL_BROWNOUT and priority == PRIORITY_BACKGROUND:
            raise ClusterOverloaded(priority, self.level, backlog, "brownout")
        if self.level >= LEVEL_DEEP and priority == PRIORITY_READ:
            raise ClusterOverloaded(priority, self.level, backlog, "brownout")

    def note_shed(self, exc: ClusterOverloaded) -> None:
        """Write the typed-shed evidence row (class + level + reason)."""
        if self.record is not None:
            self.record(
                BROWNOUT_SHED,
                f"class={exc.priority} level={LEVEL_NAMES[exc.level]} "
                f"reason={exc.reason} backlog={exc.backlog}",
            )

    def batch_limit(self, base: int) -> int:
        """Pressure-proportional batch size (never below one request)."""
        rate = self.signal.rate_pps
        if self.level < LEVEL_BROWNOUT or rate <= self.enter_rate:
            return base
        return max(1, min(base, int(base * self.enter_rate / rate)))

    def summary(self) -> dict:
        """Deterministic metrics for the shard report."""
        return {
            "brownout_transitions": self.transitions,
            "brownout_deep_transitions": self.deep_transitions,
            "pressure_peak_pps": round(self.signal.peak_pps, 1),
        }
