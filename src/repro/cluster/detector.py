"""Deterministic virtual-time heartbeat failure detection.

The gateway probes every node on a fixed virtual-clock schedule and folds
the observed probe outcomes into per-node suspicion state — the only
liveness signal the router is allowed to use.  PR 7's router read the kill
window straight out of the spec, an oracle no real deployment has; this
module replaces it with detection from observation.

Everything here is a **pure fold over the spec**: probe times are
``k * spec.heartbeat_ns``, each probe's outcome is decided by the spec's
ground-truth chaos windows plus one draw from a named
:class:`~repro.sim.rng.DeterministicRng` stream, and suspicion state is a
deterministic state machine over the outcome sequence.  No simulation
runs, no wall clock, no per-``--jobs`` divergence — every worker process
rebuilds the identical :class:`DetectorTimeline` from the same
:class:`~repro.cluster.spec.ClusterSpec`, which is what keeps cluster
manifests byte-identical at any parallelism.

Outcome model per probe, per node:

* **lost** — the node is inside a down pulse (kill window, flap pulse) or
  an asymmetric partition (the probe reaches it, the ack never returns),
  or background noise ate the heartbeat (probability ``P_NOISE_LOST``);
* **late** — the node is inside a gray-failure slow window (alive, but
  dragging past the deadline), or background jitter delayed the ack
  (probability ``P_NOISE_LATE``);
* **ok** — everything else.

Suspicion state machine (per node):

* ``suspect_after`` consecutive *lost* probes → suspected (crash / partition);
* ``2 * suspect_after`` consecutive *late* probes → suspected (gray
  failure: slow is eventually as bad as dead, but we give it more rope);
* while suspected, ``recover_after`` consecutive *ok* probes → healthy
  again, and the un-suspect time is recorded as a **recovery point** (the
  router schedules hinted handoff there).

Noise rates are chosen so a false suspicion needs an astronomically
unlikely streak (``P_NOISE_LOST ** suspect_after``), yet single dropped
heartbeats still exercise the streak-reset logic on every run.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.cluster.spec import ClusterSpec
from repro.sim.rng import DeterministicRng

# Background probe noise (per probe, per node).  Deterministic draws from
# the cluster seed; see module docstring for the false-positive math.
P_NOISE_LOST = 0.002
P_NOISE_LATE = 0.008

# Probe outcomes (also the vocabulary of DetectorTimeline.summary()).
OK = "ok"
LATE = "late"
LOST = "lost"


@dataclass(frozen=True)
class SuspicionInterval:
    """One contiguous span during which a node was suspected.

    ``start_ns`` is the probe time that crossed the suspicion threshold;
    ``end_ns`` is the probe time that cleared it (the recovery point), or
    the end of the probe schedule if the node never recovered.
    """

    node: int
    start_ns: int
    end_ns: int
    # Why suspicion triggered: "lost" (crash-like) or "late" (gray).
    cause: str


class DetectorTimeline:
    """Per-node suspicion intervals, queryable at any virtual time.

    Built once per spec by :func:`build_detector`; the router consults
    :meth:`suspected` / :meth:`down_set` instead of the spec's kill
    window, and :meth:`recovery_points` drives hinted handoff.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        intervals: tuple[SuspicionInterval, ...],
        counts: dict[str, int],
        per_node_counts: dict[int, dict[str, int]],
        end_ns: int,
    ) -> None:
        self.spec = spec
        self.intervals = intervals
        self.counts = counts
        self.per_node_counts = per_node_counts
        self._end_ns = end_ns
        self._by_node: dict[int, list[SuspicionInterval]] = {}
        for interval in intervals:
            self._by_node.setdefault(interval.node, []).append(interval)
        self._starts: dict[int, list[int]] = {
            node: [iv.start_ns for iv in ivs] for node, ivs in self._by_node.items()
        }

    # -- queries (hot path: one call per routed request per preference) -----

    def suspected(self, node: int, now_ns: int) -> bool:
        """Whether ``node`` is suspected down at virtual time ``now_ns``."""
        starts = self._starts.get(node)
        if not starts:
            return False
        idx = bisect_right(starts, now_ns) - 1
        if idx < 0:
            return False
        return now_ns < self._by_node[node][idx].end_ns

    def down_set(self, now_ns: int) -> frozenset[int]:
        """Every node suspected at ``now_ns`` (the router's failover input)."""
        return frozenset(
            node for node in self._by_node if self.suspected(node, now_ns)
        )

    def suspicion_intervals(self, node: int) -> tuple[SuspicionInterval, ...]:
        """All suspicion spans recorded for ``node``, in time order."""
        return tuple(self._by_node.get(node, ()))

    def recovery_points(self, node: int) -> tuple[int, ...]:
        """Times at which ``node`` went from suspected back to healthy."""
        return tuple(
            iv.end_ns for iv in self._by_node.get(node, ()) if iv.end_ns < self.end_ns
        )

    @property
    def end_ns(self) -> int:
        """Last probe time in the schedule (open intervals end here)."""
        return self._end_ns

    # -- accuracy vs. the spec's ground truth -------------------------------

    def accuracy(self) -> dict:
        """Detection quality measured against the spec's chaos schedule.

        The router never sees the ground truth; this comparison exists so
        reports (and tests) can state how quickly and how truthfully the
        detector tracked the actual failures.
        """
        truth_down = self.spec.down_windows()
        truth_slow = self.spec.slow_windows()
        lags: list[int] = []
        detected_pulses = 0
        total_pulses = sum(len(ws) for ws in truth_down.values())
        for node, pulses in truth_down.items():
            ivs = self._by_node.get(node, [])
            for p_start, p_end in pulses:
                hits = [
                    iv for iv in ivs if iv.start_ns < p_end and iv.end_ns > p_start
                ]
                if hits:
                    detected_pulses += 1
                    lags.append(max(0, hits[0].start_ns - p_start))
        false_suspicions = 0
        gray_detections = 0
        for iv in self.intervals:
            down = truth_down.get(iv.node, ())
            slow = truth_slow.get(iv.node, ())
            overlaps_down = any(
                iv.start_ns < end and iv.end_ns > start for start, end in down
            )
            overlaps_slow = any(
                iv.start_ns < end and iv.end_ns > start for start, end in slow
            )
            if overlaps_slow and not overlaps_down:
                gray_detections += 1
            elif not overlaps_down and not overlaps_slow:
                false_suspicions += 1
        return {
            "pulses": total_pulses,
            "detected": detected_pulses,
            "gray_detections": gray_detections,
            "false_suspicions": false_suspicions,
            "mean_lag_ns": int(sum(lags) / len(lags)) if lags else 0,
            "max_lag_ns": max(lags) if lags else 0,
        }

    def summary(self) -> dict:
        """Manifest-ready health rollup (stable key order via json dump)."""
        return {
            "heartbeat_ns": self.spec.heartbeat_ns,
            "probes": self.counts.get("probes", 0),
            "ok": self.counts.get(OK, 0),
            "late": self.counts.get(LATE, 0),
            "lost": self.counts.get(LOST, 0),
            "suspicions": len(self.intervals),
            **self.accuracy(),
        }


def probe_outcome(spec: ClusterSpec, node: int, t_ns: int, noise: float) -> str:
    """Classify one heartbeat probe of ``node`` at virtual time ``t_ns``.

    ``noise`` is the probe's single uniform draw; windows dominate noise
    so a probe inside a down pulse is *always* lost regardless of the
    draw (the draw is still consumed — fixed draw counts keep the stream
    alignment identical whatever the chaos schedule says).
    """
    for start, end in spec.down_windows().get(node, ()):
        if start <= t_ns < end:
            return LOST
    for start, end in spec.slow_windows().get(node, ()):
        if start <= t_ns < end:
            return LATE
    if noise < P_NOISE_LOST:
        return LOST
    if noise < P_NOISE_LOST + P_NOISE_LATE:
        return LATE
    return OK


def build_detector(spec: ClusterSpec) -> DetectorTimeline:
    """Fold the full probe schedule into a :class:`DetectorTimeline`.

    Pure function of ``spec``: probe times, outcomes and the suspicion
    state machine involve no simulation and no wall clock.  The schedule
    runs past the horizon by enough probes to observe recovery from a
    failure ending exactly at the horizon.
    """
    interval = spec.heartbeat_ns
    tail = (spec.suspect_after + spec.recover_after + 2) * interval
    end_ns = spec.horizon_ns + tail
    rngs = {
        node: DeterministicRng(spec.seed).stream(f"cluster:heartbeat:{node}")
        for node in range(spec.nodes)
    }
    late_threshold = 2 * spec.suspect_after

    intervals: list[SuspicionInterval] = []
    counts: dict[str, int] = {"probes": 0, OK: 0, LATE: 0, LOST: 0}
    per_node: dict[int, dict[str, int]] = {
        node: {OK: 0, LATE: 0, LOST: 0} for node in range(spec.nodes)
    }
    # Per-node fold state: streak counters plus the open suspicion, if any.
    lost_streak = [0] * spec.nodes
    late_streak = [0] * spec.nodes
    ok_streak = [0] * spec.nodes
    open_since: list[int] = [-1] * spec.nodes
    open_cause: list[str] = [""] * spec.nodes

    t = interval
    last_t = interval
    while t <= end_ns:
        last_t = t
        for node in range(spec.nodes):
            outcome = probe_outcome(spec, node, t, rngs[node].random())
            counts["probes"] += 1
            counts[outcome] += 1
            per_node[node][outcome] += 1
            if outcome == LOST:
                lost_streak[node] += 1
                late_streak[node] = 0
                ok_streak[node] = 0
                if open_since[node] < 0 and lost_streak[node] >= spec.suspect_after:
                    open_since[node] = t
                    open_cause[node] = LOST
            elif outcome == LATE:
                late_streak[node] += 1
                lost_streak[node] = 0
                ok_streak[node] = 0
                if open_since[node] < 0 and late_streak[node] >= late_threshold:
                    open_since[node] = t
                    open_cause[node] = LATE
            else:
                ok_streak[node] += 1
                lost_streak[node] = 0
                late_streak[node] = 0
                if open_since[node] >= 0 and ok_streak[node] >= spec.recover_after:
                    intervals.append(
                        SuspicionInterval(
                            node=node,
                            start_ns=open_since[node],
                            end_ns=t,
                            cause=open_cause[node],
                        )
                    )
                    open_since[node] = -1
                    open_cause[node] = ""
        t += interval
    for node in range(spec.nodes):
        if open_since[node] >= 0:
            intervals.append(
                SuspicionInterval(
                    node=node,
                    start_ns=open_since[node],
                    end_ns=last_t,
                    cause=open_cause[node],
                )
            )
    intervals.sort(key=lambda iv: (iv.node, iv.start_ns))
    return DetectorTimeline(spec, tuple(intervals), counts, per_node, last_t)
