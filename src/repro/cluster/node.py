"""One cluster node as an isolated, deterministic simulation shard.

``run_clusternode`` is a :mod:`repro.sweep` task runner: the parent
expands a ``node`` grid axis over the cluster spec and every worker
process rebuilds — purely from scalar parameters — the full arrival
schedule and routing table, selects its own node's slice, and simulates
that node end to end: enclave-backed serving stack, gateway mux, chaos
plan, and (opt-in) event-logger tracing.  Nothing is shared between
shards, and every derived quantity is a pure function of the spec, so
the merged cluster manifest is byte-identical at any ``--jobs``.

Node loss composes with the existing network chaos rather than being a
special mechanism: the killed node's shard gets its down pulses appended
to the chaos plan's partition list (its link is down — in-flight requests
stall and retry), while the router — acting only on the heartbeat
detector's suspicion timeline, never on this ground truth — has failed
arrivals over to replicas and scheduled hinted handoffs for recovery.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import replace

from repro.cluster.brownout import BrownoutController, PressureSignal
from repro.cluster.loadgen import generate_arrivals
from repro.cluster.proxy import (
    ClusterMux,
    MuxStats,
    SecureKeeperClusterBackend,
    TalosClusterBackend,
)
from repro.cluster.router import (
    OP_FILL,
    ROLE_CLIENT,
    ROLE_HANDOFF,
    ROLE_REPLICA,
    requests_for_node,
    route_requests,
)
from repro.cluster.slo import LatencyHistogram
from repro.cluster.spec import ClusterSpec
from repro.sgx.device import SgxDevice
from repro.sim.net import Listener
from repro.sim.process import SimProcess


def node_chaos_plan(spec: ClusterSpec, node: int):
    """The chaos plan one shard arms, from the spec's ground-truth schedule.

    A killed node gets its down pulses appended to the partition list
    (flapping splits the kill window into several pulses); with
    ``spec.asym`` the pulses land on the *asymmetric* partition list
    instead — requests still arrive, replies stall, and only the failure
    detector can tell the node is effectively gone.  Slow (gray-failure)
    nodes get their drag window and surcharge.  The router never reads
    any of this — it acts purely on heartbeat suspicion.
    """
    from repro.faults.netcampaign import default_chaos_plan
    from repro.faults.plan import FaultPlan

    if not spec.chaos:
        return FaultPlan.disabled()
    plan = default_chaos_plan()
    net = plan.network
    pulses = spec.down_windows().get(node, ())
    if pulses:
        if spec.asym:
            net = replace(net, asym_partitions=net.asym_partitions + tuple(pulses))
        else:
            net = replace(net, partitions=net.partitions + tuple(pulses))
    slow = spec.slow_windows().get(node, ())
    if slow:
        net = replace(
            net,
            slow_windows=net.slow_windows + tuple(slow),
            slow_extra_ns=spec.slow_extra_ns,
        )
    if net is not plan.network:
        plan = replace(plan, network=net)
    return plan


def node_pressure_plan(spec: ClusterSpec, node: int):
    """The resource-pressure plan one shard arms (§3.5 made injectable).

    Every node gets the same noisy neighbour — in a real deployment the
    co-tenant lands on each machine of the fleet it is scheduled onto —
    hammering the shard's EPC for the spec's stressor window.  The salt
    keeps per-node tenant RNG streams independent of the serving stack's.
    """
    from repro.faults import PressurePlan, StressorTenantPlan

    if not spec.stressor:
        return PressurePlan.disabled()
    start_ns, end_ns = spec.stressor_window_ns()
    return PressurePlan(
        tenants=(
            StressorTenantPlan(
                stressor=spec.stressor,
                intensity=spec.stressor_intensity,
                start_ns=start_ns,
                end_ns=end_ns,
            ),
        ),
        stream_salt=f"pressure-node{node}",
    )


def run_clusternode(params: dict, db_path: str = ":memory:") -> tuple[str, dict, dict]:
    """Simulate one node shard; returns ``(digest, metrics, faults)``.

    ``params`` is the flattened :class:`ClusterSpec` plus the ``node``
    grid axis and the seed.  With a file-backed ``db_path`` the shard is
    traced by the event logger and the digest is the trace digest; the
    untraced default digests the canonical metrics instead (tracing tens
    of thousands of requests is opt-in, not the price of every sweep).
    """
    from repro.faults import FaultInjector, PressureInjector
    from repro.faults.campaign import trace_digest
    from repro.perf.logger import AexMode, EventLogger
    from repro.workloads.serving import CircuitBreaker, RetryPolicy, ServingStats

    spec = ClusterSpec.from_params(params)
    node = int(params["node"])
    if not 0 <= node < spec.nodes:
        raise ValueError(f"node {node} out of range for {spec.nodes} node(s)")

    # Pure reconstruction of the cluster-wide schedule, then this shard's slice.
    arrivals = generate_arrivals(spec)
    routed, _info = route_requests(spec, arrivals)
    mine = requests_for_node(routed, node)

    process = SimProcess(seed=spec.node_seed(node))
    if spec.epc_pages > 0:
        from repro.sgx.epc import Epc

        device = SgxDevice(process.sim, epc=Epc(spec.epc_pages))
    else:
        device = SgxDevice(process.sim)
    sim = process.sim
    plan = node_chaos_plan(spec, node)
    listener = Listener(sim, f"cluster:node{node}")

    logger = None
    serving = ServingStats(sim, f"{spec.variant}:node{node:02d}", logger=None)
    retry = RetryPolicy()
    mux_stats = MuxStats()

    if spec.variant == "securekeeper":
        from repro.workloads.securekeeper.proxy import (
            SecureKeeperNetServer,
            SecureKeeperProxy,
        )
        from repro.workloads.securekeeper.zookeeper import ZkServer

        proxy = SecureKeeperProxy(
            process, device, tcs_count=max(8, 2 * spec.mux_connections)
        )
        if db_path != ":memory:":
            logger = EventLogger(
                process, proxy.urts, database=db_path, aex_mode=AexMode.COUNT
            )
            logger.install()
        serving.logger = logger
        proxy.make_resilient(logger=logger)
        injector = FaultInjector(plan, sim, logger=logger)
        injector.attach(proxy.urts)
        injector.attach_network(listener)
        server = SecureKeeperNetServer(
            proxy,
            listener,
            ZkServer(sim),
            breaker=CircuitBreaker(sim),
            serving=serving,
        )
        backend = SecureKeeperClusterBackend(
            spec, listener, proxy.trusted.master_key, stats=mux_stats, serving=serving
        )
        process.pthread_create(server.serve_until_closed, name=f"node{node}-acceptor")
        host_urts = proxy.urts
    else:
        from repro.workloads.talos.app import TalosApp
        from repro.workloads.talos.server import TalosNginx

        app = TalosApp(process, device)
        if db_path != ":memory:":
            logger = EventLogger(
                process, app.urts, database=db_path, aex_mode=AexMode.COUNT
            )
            logger.install()
        serving.logger = logger
        app.make_resilient(logger=logger)
        injector = FaultInjector(plan, sim, logger=logger)
        injector.attach(app.urts)
        injector.attach_network(listener)
        server = TalosNginx(
            app, listener, breaker=CircuitBreaker(sim), serving=serving
        )
        backend = TalosClusterBackend(spec, listener, sim)
        process.pthread_create(server.serve_until_closed, name=f"node{node}-nginx")
        host_urts = app.urts

    # Resource pressure: the spec's noisy neighbour shares this shard's
    # device, and (when enabled) the brownout controller reads the paging
    # rate straight off the driver's counters.
    pressure = PressureInjector(
        node_pressure_plan(spec, node), process, device, logger=logger, urts=host_urts
    )
    pressure.arm()
    brownout = None
    if spec.brownout:
        brownout = BrownoutController(
            PressureSignal(device.driver.stats),
            congestion_backlog=spec.admission_limit // 4,
            record=serving.record_event,
        )

    mux = ClusterMux(
        spec,
        node,
        requests=mine,
        backend=backend,
        serving=serving,
        retry=retry,
        process=process,
        listener=listener,
        stats=mux_stats,
        brownout=brownout,
    )
    mux.start()
    sim.run()

    histogram = LatencyHistogram()
    for latency in serving.latencies_ns:
        histogram.add(latency)
    metrics = serving.summary()
    del metrics["workload"]  # already in the task key via variant/node
    metrics["latency_hist"] = histogram.as_dict()
    metrics["routed"] = len(mine)
    metrics["client_requests"] = sum(1 for r in mine if r.role == ROLE_CLIENT)
    metrics["replica_writes"] = sum(1 for r in mine if r.role == ROLE_REPLICA)
    metrics["handoffs"] = sum(1 for r in mine if r.role == ROLE_HANDOFF)
    metrics["fills"] = sum(
        1 for r in mine if r.op == OP_FILL and r.role == ROLE_CLIENT
    )
    metrics["failovers"] = sum(
        1 for r in mine if r.failover and r.role == ROLE_CLIENT
    )
    metrics["duration_ns"] = sim.now_ns
    metrics.update(mux.stats.as_dict())
    metrics["page_in"] = device.driver.stats.get("page_in", 0)
    metrics["page_out"] = device.driver.stats.get("page_out", 0)
    metrics["epc_capacity"] = device.epc.capacity_pages
    metrics["epc_high_water"] = device.epc.high_water_pages
    metrics["tenant_ops"] = pressure.tenant_ops
    if brownout is not None:
        metrics.update(brownout.summary())
    else:
        metrics.update(
            {
                "brownout_transitions": 0,
                "brownout_deep_transitions": 0,
                "pressure_peak_pps": 0.0,
            }
        )
    combined = dict(injector.stats)
    for kind, count in pressure.stats.items():
        combined[kind] = combined.get(kind, 0) + count
    faults = {
        kind: count
        for kind, count in sorted(combined.items())
        if kind.startswith("inject:")
    }

    if logger is not None:
        logger.uninstall()
        db = logger.finalize()
        digest = trace_digest(db)
        db.close()
    else:
        canonical = json.dumps(metrics, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(canonical.encode()).hexdigest()
    return digest, metrics, faults
