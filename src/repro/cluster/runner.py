"""Cluster orchestration: fan node shards over the sweep engine, merge SLOs.

``run_cluster`` turns a :class:`~repro.cluster.spec.ClusterSpec` into a
one-axis sweep grid (``node = 0..N-1``) and runs it on
:func:`repro.sweep.run_sweep` — every node is a shared-nothing worker
process with its own simulation kernel, and the engine's task-index-order
merge makes the cluster manifest byte-identical at any ``--jobs``.  The
parent then reassembles per-node :class:`~repro.cluster.slo.SloSummary`
records from the shard metrics and rolls them up into the cluster-wide
availability + p50/p99/p999 report.

Run directly::

    python -m repro.cluster.runner --nodes 4 --clients 10000 --jobs 4

"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
from dataclasses import dataclass
from typing import Optional

from repro.cluster.detector import build_detector
from repro.cluster.loadgen import generate_arrivals
from repro.cluster.router import RoutingInfo, route_requests
from repro.cluster.slo import SloSummary, render_slo_table, rollup
from repro.cluster.spec import ClusterSpec, ClusterSpecError
from repro.sweep import SweepReport, run_sweep

# Shard-metric keys aggregated into the cluster replication health line.
_REPLICATION_KEYS = (
    "replica_ok",
    "replica_failed",
    "replica_shed",
    "handoff_ok",
    "handoff_failed",
)

# Shard-metric keys summed into the cluster brownout/pressure line.
_BROWNOUT_SUM_KEYS = (
    "write_ok",
    "write_failed",
    "read_ok",
    "read_failed",
    "shed_write",
    "shed_read",
    "shed_background",
    "brownout_transitions",
    "brownout_deep_transitions",
    "page_in",
    "page_out",
    "tenant_ops",
)


def _availability(ok: int, failed: int) -> float:
    """Per-class availability under the repo-wide convention (no samples = 1)."""
    attempted = ok + failed
    return ok / attempted if attempted else 1.0


@dataclass
class ClusterReport:
    """One cluster run: the sweep beneath it plus the merged SLO view."""

    spec: ClusterSpec
    sweep: SweepReport
    routing: RoutingInfo
    node_slos: list[SloSummary]
    cluster_slo: SloSummary
    detector: dict
    replication: dict
    brownout: dict

    @property
    def availability(self) -> float:
        """Cluster-wide end-to-end success rate."""
        return self.cluster_slo.success_rate

    @property
    def lost_writes(self) -> int:
        """Acknowledged writes no live replica held at read time."""
        return self.routing.lost_writes

    @property
    def write_availability(self) -> float:
        """High-priority (client write) availability across the cluster."""
        return _availability(
            self.brownout["write_ok"], self.brownout["write_failed"]
        )

    @property
    def read_availability(self) -> float:
        """Client read availability across the cluster."""
        return _availability(self.brownout["read_ok"], self.brownout["read_failed"])

    @property
    def degraded(self) -> bool:
        """Whether any shard failed to run at all."""
        return self.sweep.failed > 0 or self.sweep.lost > 0

    @property
    def manifest(self) -> str:
        """Deterministic cluster manifest: the sweep manifest plus rollup.

        Everything appended below the sweep manifest is a pure function of
        the shard metrics, so the whole document — and its digest — stays
        byte-identical across worker counts.  Wall-clock and attempt
        counts never appear here.
        """
        cluster = self.cluster_slo.as_dict()
        lines = [
            self.sweep.manifest.rstrip("\n"),
            "# cluster " + self.spec.canonical_json(),
            "# routing "
            + json.dumps(self.routing.as_dict(), sort_keys=True, separators=(",", ":")),
            "# detector "
            + json.dumps(self.detector, sort_keys=True, separators=(",", ":")),
            "# replication "
            + json.dumps(self.replication, sort_keys=True, separators=(",", ":")),
            "# brownout "
            + json.dumps(self.brownout, sort_keys=True, separators=(",", ":")),
            "# slo " + json.dumps(cluster, sort_keys=True, separators=(",", ":")),
        ]
        return "\n".join(lines) + "\n"

    @property
    def digest(self) -> str:
        """SHA-256 over the cluster manifest (the CI determinism gate)."""
        return hashlib.sha256(self.manifest.encode()).hexdigest()

    def render(self) -> str:
        """Human-readable cluster report (deterministic)."""
        det = self.detector
        rep = self.replication
        bo = self.brownout
        lines = [
            f"cluster: {self.spec.describe()}",
            f"routing: policy={self.routing.policy} "
            f"assigned={self.routing.assigned} "
            f"failovers={self.routing.failovers} fills={self.routing.fills} "
            f"all-down-shed={self.routing.all_down_shed}",
            f"detector: {det['probes']} probes every {det['heartbeat_ns']} ns "
            f"({det['ok']} ok / {det['late']} late / {det['lost']} lost), "
            f"{det['suspicions']} suspicion(s) — detected {det['detected']}/"
            f"{det['pulses']} down pulse(s), mean lag {det['mean_lag_ns']} ns, "
            f"{det['gray_detections']} gray, {det['false_suspicions']} false",
            f"replication: R={self.spec.effective_replication} "
            f"writes={self.routing.replica_writes} "
            f"(ok {rep['replica_ok']} / failed {rep['replica_failed']} / "
            f"shed {rep['replica_shed']}), "
            f"handoffs={self.routing.handoffs} "
            f"(ok {rep['handoff_ok']} / failed {rep['handoff_failed']}), "
            f"acknowledged writes lost: {self.lost_writes}",
            f"pressure: paging {bo['page_in']}+{bo['page_out']} pages "
            f"(peak {bo['pressure_peak_pps']:.0f}/s), tenant ops {bo['tenant_ops']}, "
            f"{bo['brownout_transitions']} brownout "
            f"({bo['brownout_deep_transitions']} deep) — shed "
            f"bg {bo['shed_background']} / read {bo['shed_read']} / "
            f"write {bo['shed_write']}; availability "
            f"write {self.write_availability:.4%} / read {self.read_availability:.4%}",
            "",
            render_slo_table(self.node_slos + [self.cluster_slo]),
            "",
            f"cluster availability: {self.availability:.4%} "
            f"({self.cluster_slo.succeeded}/{self.cluster_slo.attempted})",
        ]
        if self.degraded:
            lines.append(
                f"DEGRADED: {self.sweep.failed} shard(s) failed, "
                f"{self.sweep.lost} worker-lost"
            )
            for result in self.sweep.results:
                if result.status != "ok":
                    lines.append(f"  {result.key}: {result.status} {result.error}")
        lines.append(f"manifest digest: {self.digest}")
        return "\n".join(lines)


def run_cluster(
    spec: ClusterSpec,
    jobs: Optional[int] = None,
    trace_dir: Optional[str] = None,
) -> ClusterReport:
    """Run every node shard of ``spec`` and merge the cluster report."""
    params = spec.to_params()
    if trace_dir:
        os.makedirs(trace_dir, exist_ok=True)
        params["trace_dir"] = trace_dir
    sweep = run_sweep(
        spec={
            "kind": "clusternode",
            "seeds": [spec.seed],
            "params": params,
            # Sorted-axis expansion with one axis and one seed: task index
            # == node index == merge order.
            "grid": {"node": list(range(spec.nodes))},
        },
        jobs=jobs,
    )
    # The routing table and detector timeline are pure functions of the
    # spec — recompute them here for the report rather than shipping them
    # back from the shards.
    detector = build_detector(spec)
    _, routing = route_requests(spec, generate_arrivals(spec), detector=detector)
    node_slos = []
    replication = {key: 0 for key in _REPLICATION_KEYS}
    brownout = {key: 0 for key in _BROWNOUT_SUM_KEYS}
    brownout["pressure_peak_pps"] = 0.0
    for node, result in enumerate(sweep.results):
        scope = f"{spec.variant}:node{node:02d}"
        if result.status == "ok":
            node_slos.append(SloSummary.from_metrics(scope, result.metrics))
            for key in _REPLICATION_KEYS:
                replication[key] += int(result.metrics.get(key, 0))
            for key in _BROWNOUT_SUM_KEYS:
                brownout[key] += int(result.metrics.get(key, 0))
            brownout["pressure_peak_pps"] = max(
                brownout["pressure_peak_pps"],
                float(result.metrics.get("pressure_peak_pps", 0.0)),
            )
        else:
            node_slos.append(SloSummary(scope=scope))
    brownout["write_availability"] = _availability(
        brownout["write_ok"], brownout["write_failed"]
    )
    brownout["read_availability"] = _availability(
        brownout["read_ok"], brownout["read_failed"]
    )
    return ClusterReport(
        spec=spec,
        sweep=sweep,
        routing=routing,
        node_slos=node_slos,
        cluster_slo=rollup(node_slos),
        detector=detector.summary(),
        replication=replication,
        brownout=brownout,
    )


def spec_from_args(args: argparse.Namespace) -> ClusterSpec:
    """Build the spec from ``--spec`` JSON or inline flags."""
    if args.spec:
        if args.spec == "-":
            mapping = json.load(sys.stdin)
        else:
            with open(args.spec) as f:
                mapping = json.load(f)
        return ClusterSpec.from_dict(mapping)
    return ClusterSpec(
        variant=args.variant,
        nodes=args.nodes,
        clients=args.clients,
        ops_per_client=args.ops,
        policy=args.policy,
        seed=args.seed,
        rate_rps=args.rate,
        mux_connections=args.mux,
        batch_size=args.batch,
        chaos=not args.no_chaos,
        kill_node=args.kill_node,
        kill_count=args.kill_count,
        flaps=args.flaps,
        asym=args.asym,
        slow_nodes=args.slow_nodes,
        replication=args.replication,
        stressor=args.stressor,
        stressor_intensity=args.stressor_intensity,
        epc_pages=args.epc_pages,
        brownout=not args.no_brownout,
    )


def add_cluster_arguments(parser: argparse.ArgumentParser) -> None:
    """The ``sgxperf cluster`` / ``python -m repro.cluster.runner`` flags."""
    parser.add_argument("--spec", help="JSON cluster spec file ('-' reads stdin)")
    parser.add_argument(
        "--variant",
        choices=("securekeeper", "talos"),
        default="securekeeper",
        help="enclave serving stack each node runs",
    )
    parser.add_argument("--nodes", type=int, default=4, help="node count")
    parser.add_argument(
        "--clients", type=int, default=10_000, help="simulated open-loop clients"
    )
    parser.add_argument("--ops", type=int, default=2, help="operations per client")
    parser.add_argument(
        "--policy",
        choices=("hash", "least-loaded"),
        default="hash",
        help="router policy",
    )
    parser.add_argument("--seed", type=int, default=0, help="cluster seed")
    parser.add_argument(
        "--rate",
        type=float,
        default=0.0,
        help="cluster-wide arrival rate in requests/s (0 = per-variant default)",
    )
    parser.add_argument(
        "--mux", type=int, default=4, help="gateway connections per node"
    )
    parser.add_argument(
        "--batch", type=int, default=8, help="max requests per batched send"
    )
    parser.add_argument(
        "--no-chaos", action="store_true", help="run the chaos-off baseline"
    )
    parser.add_argument(
        "--kill-node",
        type=int,
        default=-1,
        help="node lost mid-run under chaos (-1 = last node; needs >= 2 nodes)",
    )
    parser.add_argument(
        "--kill-count",
        type=int,
        default=1,
        help="correlated kill: lose this many nodes in the same window",
    )
    parser.add_argument(
        "--flaps",
        type=int,
        default=0,
        help="split the kill window into N down pulses (flapping node)",
    )
    parser.add_argument(
        "--asym",
        action="store_true",
        help="asymmetric kill: requests reach the node but replies stall",
    )
    parser.add_argument(
        "--slow-nodes",
        type=int,
        default=0,
        help="gray failure: this many nodes drag through their slow window",
    )
    parser.add_argument(
        "--replication",
        type=int,
        default=2,
        help="replication factor R: copies of every write across the ring",
    )
    parser.add_argument(
        "--stressor",
        default="",
        help="noisy-neighbour stressor profile every node hosts "
        "(cpu-spin, epc-thrash, ocall-storm, futex-hammer, mixed; '' = none)",
    )
    parser.add_argument(
        "--stressor-intensity",
        type=float,
        default=1.0,
        help="stressor scaling factor (footprint, op mix, threads)",
    )
    parser.add_argument(
        "--epc-pages",
        type=int,
        default=0,
        help="scaled-down per-node EPC in pages (0 = the full hardware pool)",
    )
    parser.add_argument(
        "--no-brownout",
        action="store_true",
        help="ablation: disable the gateway brownout controller "
        "(cliff-edge admission only)",
    )
    parser.add_argument(
        "--write-slo",
        type=float,
        default=None,
        help="high-priority gate: exit 1 if client-write availability "
        "falls below this floor",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="shard worker processes (default: SGXPERF_JOBS, else cpu count; 0 = inline)",
    )
    parser.add_argument(
        "--trace-dir", help="keep per-node trace databases in this directory"
    )
    parser.add_argument("--manifest", help="write the cluster manifest to this path")
    parser.add_argument(
        "--digest-only",
        action="store_true",
        help="print only the manifest digest (the CI determinism gate)",
    )
    parser.add_argument(
        "--slo",
        type=float,
        default=0.99,
        help="availability floor: exit 1 below this success rate (default 0.99)",
    )
    parser.add_argument(
        "--max-lost",
        type=int,
        default=None,
        metavar="N",
        help="durability gate: exit 1 if more than N acknowledged writes "
        "were lost (the CI zero-loss gate passes 0)",
    )


def run_cluster_command(args: argparse.Namespace) -> int:
    """Shared implementation behind ``sgxperf cluster`` and ``__main__``."""
    try:
        spec = spec_from_args(args)
    except ClusterSpecError as exc:
        print(f"cluster: {exc}", file=sys.stderr)
        return 2
    report = run_cluster(spec, jobs=args.jobs, trace_dir=args.trace_dir)
    if args.manifest:
        with open(args.manifest, "w") as f:
            f.write(report.manifest)
    if args.digest_only:
        print(report.digest)
    else:
        print(report.render())
        print(
            f"wall-clock: {report.sweep.wall_seconds:.2f}s "
            f"with jobs={report.sweep.jobs}"
        )
    if report.degraded:
        return 1
    if args.max_lost is not None and report.lost_writes > args.max_lost:
        print(
            f"cluster: {report.lost_writes} acknowledged write(s) lost "
            f"(gate allows {args.max_lost})",
            file=sys.stderr,
        )
        return 1
    if args.write_slo is not None and report.write_availability < args.write_slo:
        print(
            f"cluster: write availability {report.write_availability:.4%} "
            f"below the {args.write_slo:.4%} floor",
            file=sys.stderr,
        )
        return 1
    return 0 if report.availability >= args.slo else 1


def main(argv: Optional[list] = None) -> int:
    """Entry point: ``python -m repro.cluster.runner``."""
    parser = argparse.ArgumentParser(
        prog="repro.cluster.runner",
        description="Run a sharded multi-enclave serving cluster",
    )
    add_cluster_arguments(parser)
    return run_cluster_command(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
