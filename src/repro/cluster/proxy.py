"""The per-node gateway: connection multiplexing, batching, admission.

Each cluster node runs a **gateway mux** in front of its serving stack.
Tens of thousands of simulated clients cannot each hold an enclave
session — the SecureKeeper proxy allocates a 40 KiB in-enclave queue per
session against a 2 MiB heap — so the gateway terminates client crypto
and multiplexes all client traffic over ``mux_connections`` long-lived
upstream connections, each owning one enclave session (a *gateway
identity*).  Requests queued on a connection are coalesced into batches
of up to ``batch_size`` length-prefixed frames sent as one segment, which
amortises the per-send syscall and wire cost exactly the way real
proxies batch pipelined requests.

The mux is **open loop**: a dispatcher thread replays the node's routed
arrival schedule on the virtual clock and enqueues each request at its
arrival time whether or not earlier requests have completed.  Queueing
delay therefore appears in the latency distribution (completion minus
*arrival*, not minus send).  Admission control sheds arrivals once the
node's queue backlog reaches ``admission_limit`` — the overload story of
:class:`~repro.workloads.serving.CircuitBreaker` extended to the gateway.

Failures are absorbed with the serving stack's existing vocabulary:
``SHED_REPLY`` and connection errors retry with the exponential
virtual-time backoff of :class:`~repro.workloads.serving.RetryPolicy`,
and a request that exhausts its attempts is recorded as failed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.brownout import (
    LEVEL_NORMAL,
    PRIORITY_READ,
    PRIORITY_WRITE,
    BrownoutController,
    ClusterOverloaded,
    priority_class,
)
from repro.cluster.router import OP_GET, ROLE_CLIENT, ROLE_HANDOFF, RoutedRequest
from repro.cluster.spec import ClusterSpec
from repro.crypto.hmac import hkdf_like
from repro.crypto.stream import stream_xor
from repro.sim.net import Listener, SocketClosed, SocketTimeout
from repro.workloads.securekeeper.loadgen import _client_packet
from repro.workloads.securekeeper.proxy import (
    MSG_CONNECT,
    SHED_REPLY,
    recv_frame,
    send_frame,
)
from repro.workloads.securekeeper.zookeeper import ZkRequest, ZkResponse

# Gateway identities sit far above any real client id so the enclave's
# session table never confuses the two namespaces.
GATEWAY_ID_BASE = 900_000

# Per-item outcomes a backend reports for one batch.
OUTCOME_OK = "ok"
OUTCOME_RETRY = "retry"  # transient (reset/timeout/shed/ordering miss)
OUTCOME_BAD = "bad"  # wrong payload — retrying cannot fix it

# Gateway session lifecycle rows (fold input for the session-orderliness
# validator in :mod:`repro.cluster.orderly`; written only when traced).
SESSION_CONNECT = "session:connect"
SESSION_BATCH = "session:batch"
SESSION_CLOSE = "session:close"


class _Shed(Exception):
    """The node shed the request (breaker open / gateway backlog)."""


def client_payload(client_id: int, path_index: int, payload_bytes: int) -> bytes:
    """The deterministic payload client ``client_id`` writes at ``path_index``.

    Matches the single-node load generator's formula (op ``2*path_index``
    is the create), so fills re-create byte-identical values and gets can
    verify end-to-end integrity without any shared state.
    """
    base = client_id * 31 + 2 * path_index
    return bytes((base + i) % 256 for i in range(payload_bytes))


def request_path(client_id: int, path_index: int) -> bytes:
    """The znode path for one client/path pair."""
    return f"/cluster/c{client_id}/p{path_index}".encode()


@dataclass
class PendingRequest:
    """One routed request queued in the gateway."""

    routed: RoutedRequest
    attempts: int = 0


@dataclass
class MuxStats:
    """What the gateway itself observed (beyond ServingStats).

    Replica writes and hinted handoffs are gateway-internal traffic:
    they consume shard capacity but are never client requests, so their
    outcomes are tallied here instead of in :class:`ServingStats` (which
    owns the availability denominator).
    """

    batches: int = 0
    batched_requests: int = 0
    reconnects: int = 0
    admission_shed: int = 0
    max_backlog: int = 0
    replica_ok: int = 0
    replica_failed: int = 0
    replica_shed: int = 0
    handoff_ok: int = 0
    handoff_failed: int = 0
    # Priority-classed books (brownout § — client ops split write/read,
    # replica + handoff traffic is the background class).
    write_ok: int = 0
    write_failed: int = 0
    read_ok: int = 0
    read_failed: int = 0
    shed_write: int = 0
    shed_read: int = 0
    shed_background: int = 0
    # Smallest batch limit the gateway actually ran with (brownout shrink).
    batch_limit_min: int = 0

    def as_dict(self) -> dict:
        return {
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "reconnects": self.reconnects,
            "admission_shed": self.admission_shed,
            "max_backlog": self.max_backlog,
            "replica_ok": self.replica_ok,
            "replica_failed": self.replica_failed,
            "replica_shed": self.replica_shed,
            "handoff_ok": self.handoff_ok,
            "handoff_failed": self.handoff_failed,
            "write_ok": self.write_ok,
            "write_failed": self.write_failed,
            "read_ok": self.read_ok,
            "read_failed": self.read_failed,
            "shed_write": self.shed_write,
            "shed_read": self.shed_read,
            "shed_background": self.shed_background,
            "batch_limit_min": self.batch_limit_min,
        }

    def count_shed(self, priority: str) -> None:
        """Fold one shed (any mechanism) into its priority-class book."""
        if priority == PRIORITY_WRITE:
            self.shed_write += 1
        elif priority == PRIORITY_READ:
            self.shed_read += 1
        else:
            self.shed_background += 1


class SecureKeeperClusterBackend:
    """Gateway upstream speaking the SecureKeeper framed protocol.

    One connection per mux slot, each bound to a gateway identity whose
    enclave session is registered exactly once — the session lives in
    :class:`SecureKeeperEnclave` state outside the enclave memory model,
    so reconnecting after a reset must *not* re-send ``MSG_CONNECT``
    (every re-registration would leak a fresh 40 KiB in-enclave queue and
    chew through the 2 MiB heap within a few dozen resets).
    """

    def __init__(
        self,
        spec: ClusterSpec,
        listener: Listener,
        master_key: bytes,
        stats: MuxStats,
        serving=None,
    ) -> None:
        self.spec = spec
        self.listener = listener
        self.stats = stats
        self.serving = serving
        self._socks: dict[int, Optional[object]] = {}
        self._registered: set[int] = set()
        self._session_closed: set[int] = set()
        self._keys = {
            conn: hkdf_like(
                master_key, b"client" + (GATEWAY_ID_BASE + conn).to_bytes(4, "big")
            )
            for conn in range(spec.mux_connections)
        }

    # -- connection management ----------------------------------------------

    def _session_row(self, kind: str, conn: int, detail: str) -> None:
        if self.serving is not None:
            gateway_id = GATEWAY_ID_BASE + conn
            self.serving.record_event(kind, f"gateway {gateway_id}: {detail}")

    def _ensure(self, conn: int):
        sock = self._socks.get(conn)
        if sock is not None and not sock.closed:
            return sock
        if sock is not None:
            self.stats.reconnects += 1
        sock = self.listener.connect()
        sock.settimeout(self.spec.client_timeout_ns)
        self._socks[conn] = sock
        gateway_id = GATEWAY_ID_BASE + conn
        if gateway_id not in self._registered:
            connect = gateway_id.to_bytes(4, "big") + bytes([MSG_CONNECT]) + b"\x00" * 8
            send_frame(sock, connect)
            reply = recv_frame(sock)
            if reply is None:
                raise ConnectionError("node closed during gateway connect")
            if reply == SHED_REPLY:
                raise _Shed("gateway connect shed")
            if not reply.startswith(b"\x01OK"):
                raise ConnectionError(f"gateway connect failed: {reply!r}")
            self._registered.add(gateway_id)
            self._session_row(SESSION_CONNECT, conn, "enclave session registered")
        return sock

    def _drop(self, conn: int) -> None:
        sock = self._socks.get(conn)
        if sock is not None:
            sock.close()
            self._socks[conn] = sock  # keep it so reconnects are counted

    def close_all(self) -> None:
        """Close every upstream connection (node handlers see EOF)."""
        for conn, sock in self._socks.items():
            if sock is not None and not sock.closed:
                sock.close()
            if conn not in self._session_closed:
                self._session_closed.add(conn)
                self._session_row(SESSION_CLOSE, conn, "gateway session closed")

    # -- request execution ---------------------------------------------------

    def _zk_request(self, routed: RoutedRequest) -> ZkRequest:
        path = request_path(routed.client_id, routed.path_index)
        if routed.op == OP_GET:
            return ZkRequest(op="get", path=path)
        # create and fill both write the canonical payload
        payload = client_payload(
            routed.client_id, routed.path_index, self.spec.payload_bytes
        )
        return ZkRequest(op="create", path=path, payload=payload)

    def _verify_get(self, conn: int, sock, routed: RoutedRequest) -> str:
        """Idempotency check after a failed create: read the value back."""
        key = self._keys[conn]
        gateway_id = GATEWAY_ID_BASE + conn
        check = ZkRequest(
            op="get", path=request_path(routed.client_id, routed.path_index)
        )
        send_frame(sock, _client_packet(gateway_id, key, check))
        reply = recv_frame(sock)
        if reply is None:
            raise ConnectionError("node closed during verify get")
        if reply == SHED_REPLY or reply.startswith(b"\x00ERR"):
            return OUTCOME_RETRY
        plain = stream_xor(key, reply[:8], reply[8:])
        response = ZkResponse.decode(plain)
        expected = client_payload(
            routed.client_id, routed.path_index, self.spec.payload_bytes
        )
        if response.ok and response.payload == expected:
            return OUTCOME_OK
        return OUTCOME_BAD if response.ok else OUTCOME_RETRY

    def _settle(self, conn: int, sock, item: PendingRequest, reply: bytes) -> str:
        """Decrypt one reply and decide the item's outcome."""
        if reply == SHED_REPLY:
            return OUTCOME_RETRY
        if reply.startswith(b"\x00ERR"):
            return OUTCOME_RETRY
        key = self._keys[conn]
        plain = stream_xor(key, reply[:8], reply[8:])
        response = ZkResponse.decode(plain)
        routed = item.routed
        if routed.op == OP_GET:
            if not response.ok:
                # The matching create is still queued or retrying on this
                # connection; trying again later self-heals the ordering.
                return OUTCOME_RETRY
            expected = client_payload(
                routed.client_id, routed.path_index, self.spec.payload_bytes
            )
            return OUTCOME_OK if response.payload == expected else OUTCOME_BAD
        if response.ok:
            return OUTCOME_OK
        # create collided — a fill onto a shard that already holds the path,
        # or a replay of a create applied just before its connection died.
        # Verify idempotently instead of failing.
        return self._verify_get(conn, sock, routed)

    def execute_batch(self, conn: int, items: list[PendingRequest]) -> list[str]:
        """Send one batch as a single segment; settle replies in order.

        Connection-level failures mark every unsettled item ``retry`` —
        the mux re-queues them and backs off before reconnecting.
        """
        outcomes: list[str] = []
        replies: list[bytes] = []
        try:
            sock = self._ensure(conn)
            gateway_id = GATEWAY_ID_BASE + conn
            key = self._keys[conn]
            segment = b""
            for item in items:
                payload = _client_packet(gateway_id, key, self._zk_request(item.routed))
                segment += len(payload).to_bytes(4, "big") + payload
            # One send for the whole batch (looping through short writes).
            while segment:
                segment = segment[sock.send(segment) :]
            self.stats.batches += 1
            self.stats.batched_requests += len(items)
            self._session_row(SESSION_BATCH, conn, f"{len(items)} request(s) sent")
            # Drain every batch reply BEFORE settling: settling a create
            # collision issues a verify get on the same connection, and an
            # early send would interleave with the remaining batch replies
            # and desynchronise the stream.
            for _ in items:
                reply = recv_frame(sock)
                if reply is None:
                    raise ConnectionError("node closed mid-batch")
                replies.append(reply)
            for item, reply in zip(items, replies):
                outcomes.append(self._settle(conn, sock, item, reply))
        except (ConnectionError, SocketTimeout, _Shed):
            self._drop(conn)
            outcomes.extend([OUTCOME_RETRY] * (len(items) - len(outcomes)))
        return outcomes


class TalosClusterBackend:
    """Gateway upstream for the stateless TaLoS variant.

    Every request is a full mini-TLS exchange on a fresh connection (the
    TaLoS server closes after each response), so there is nothing to
    multiplex at the connection level — the mux's ``mux_connections``
    worker slots still provide request-level concurrency, and batches
    simply run back to back on one worker.
    """

    def __init__(self, spec: ClusterSpec, listener: Listener, sim) -> None:
        from repro.workloads.talos.client import TalosCurlClient

        self.spec = spec
        self._clients = [
            TalosCurlClient(
                sim,
                listener,
                seed_tag=f"gateway-{conn}",
                timeout_ns=spec.client_timeout_ns,
            )
            for conn in range(spec.mux_connections)
        ]

    def close_all(self) -> None:
        """Nothing persistent to close — connections are per-request."""

    def execute_batch(self, conn: int, items: list[PendingRequest]) -> list[str]:
        """Run the batch sequentially; each item is one TLS exchange."""
        from repro.workloads.talos.client import TlsClientError

        client = self._clients[conn]
        outcomes: list[str] = []
        for item in items:
            try:
                client._one_request(item.routed.op_index)
            except (SocketClosed, SocketTimeout, TlsClientError, ConnectionError):
                outcomes.append(OUTCOME_RETRY)
            else:
                outcomes.append(OUTCOME_OK)
        return outcomes


class ClusterMux:
    """Open-loop dispatcher + batching workers for one node shard."""

    def __init__(
        self,
        spec: ClusterSpec,
        node: int,
        requests: list[RoutedRequest],
        backend,
        serving,
        retry,
        process,
        listener: Listener,
        stats: Optional[MuxStats] = None,
        brownout: Optional[BrownoutController] = None,
    ) -> None:
        self.spec = spec
        self.node = node
        self.requests = requests
        self.backend = backend
        self.serving = serving
        self.retry = retry
        self.process = process
        self.sim = process.sim
        self.listener = listener
        self.stats = stats if stats is not None else MuxStats()
        self.brownout = brownout
        self._queues: list[list[PendingRequest]] = [
            [] for _ in range(spec.mux_connections)
        ]
        self._backlog = 0
        self._dispatched_all = False
        self._workers_left = spec.mux_connections

    def _queue_key(self, conn: int):
        return ("cluster:mux", self.node, conn)

    def start(self) -> None:
        """Spawn the dispatcher and one worker per upstream connection."""
        self.process.pthread_create(
            self._dispatch, name=f"mux-dispatch-{self.node}"
        )
        for conn in range(self.spec.mux_connections):
            self.process.pthread_create(
                self._worker, conn, name=f"mux-worker-{self.node}-{conn}"
            )

    # -- dispatcher -----------------------------------------------------------

    def _shed(self, routed: RoutedRequest, exc: ClusterOverloaded) -> None:
        """Book one refusal under every ledger that watches it."""
        self.stats.count_shed(exc.priority)
        if self.brownout is not None:
            self.brownout.note_shed(exc)
        if routed.role != ROLE_CLIENT:
            # Replica/handoff traffic yields to client traffic under
            # overload — shedding a copy trades durability margin for
            # client capacity, tallied here so SLO reports show when
            # replication ran degraded.
            self.stats.replica_shed += 1
            return
        # A refused client request is a failed request from the caller's
        # side: sheds count against the class availability so graceful
        # degradation cannot hide behind its own refusals.
        if exc.priority == PRIORITY_WRITE:
            self.stats.write_failed += 1
        else:
            self.stats.read_failed += 1
        if exc.reason == "admission":
            self.stats.admission_shed += 1
            self.serving.record_shed(
                f"node {self.node} backlog {exc.backlog} at admission"
            )
        else:
            self.serving.record_shed(
                f"node {self.node} brownout shed {exc.priority} "
                f"client {routed.client_id}"
            )

    def _dispatch(self) -> None:
        sim = self.sim
        for routed in self.requests:
            delta = routed.arrival_ns - sim.now_ns
            if delta > 0:
                # Nobody wakes this key: a pure virtual sleep to the arrival.
                sim.futex_wait(("cluster:mux-clock", self.node), timeout_ns=delta)
            priority = priority_class(routed.op, routed.role)
            level = (
                self.brownout.observe(sim.now_ns)
                if self.brownout is not None
                else LEVEL_NORMAL
            )
            try:
                limit = self.spec.admission_limit
                if self.brownout is not None and priority == PRIORITY_WRITE:
                    # Writes keep a deeper reserve: the controller sheds
                    # reads and background first to drain the queue, so
                    # the cliff only refuses a write once the backlog
                    # blows past twice the normal bound.
                    limit *= 2
                if self._backlog >= limit:
                    raise ClusterOverloaded(
                        priority, level, self._backlog, "admission"
                    )
                if self.brownout is not None:
                    self.brownout.admit(priority, self._backlog)
            except ClusterOverloaded as exc:
                self._shed(routed, exc)
                continue
            conn = routed.client_id % self.spec.mux_connections
            self._queues[conn].append(PendingRequest(routed))
            self._backlog += 1
            self.stats.max_backlog = max(self.stats.max_backlog, self._backlog)
            sim.futex_wake(self._queue_key(conn))
        self._dispatched_all = True
        for conn in range(self.spec.mux_connections):
            sim.futex_wake(self._queue_key(conn), count=2)

    # -- workers --------------------------------------------------------------

    def _take(self, conn: int) -> list[PendingRequest]:
        """Up to ``batch_size`` queued items; blocks until work or shutdown.

        Under brownout the limit shrinks with paging pressure — smaller
        batches pin fewer pages per upstream exchange and give the
        paging-bound enclave its capacity back sooner.
        """
        queue = self._queues[conn]
        while not queue:
            if self._dispatched_all:
                return []
            self.sim.futex_wait(self._queue_key(conn))
        limit = self.spec.batch_size
        if self.brownout is not None:
            limit = self.brownout.batch_limit(limit)
        if self.stats.batch_limit_min == 0 or limit < self.stats.batch_limit_min:
            self.stats.batch_limit_min = limit
        items = queue[:limit]
        del queue[: len(items)]
        self._backlog -= len(items)
        return items

    def _worker(self, conn: int) -> None:
        sim = self.sim
        while True:
            items = self._take(conn)
            if not items:
                break
            outcomes = self.backend.execute_batch(conn, items)
            retried: list[PendingRequest] = []
            for item, outcome in zip(items, outcomes):
                routed = item.routed
                if routed.role != ROLE_CLIENT:
                    # Gateway-internal traffic (replica writes, hinted
                    # handoffs): same retry machinery, separate books —
                    # only client requests may move the availability
                    # numerator/denominator.
                    if outcome == OUTCOME_OK:
                        if routed.role == ROLE_HANDOFF:
                            self.stats.handoff_ok += 1
                        else:
                            self.stats.replica_ok += 1
                        continue
                    if outcome != OUTCOME_BAD:
                        item.attempts += 1
                        if item.attempts < self.retry.max_attempts:
                            retried.append(item)
                            continue
                    if routed.role == ROLE_HANDOFF:
                        self.stats.handoff_failed += 1
                    else:
                        self.stats.replica_failed += 1
                    continue
                is_write = priority_class(routed.op, routed.role) == PRIORITY_WRITE
                if outcome == OUTCOME_OK:
                    self.serving.record_success(sim.now_ns - routed.arrival_ns)
                    if is_write:
                        self.stats.write_ok += 1
                    else:
                        self.stats.read_ok += 1
                    continue
                if outcome == OUTCOME_BAD:
                    self.serving.record_failure(
                        f"node {self.node} client {routed.client_id} "
                        f"p{routed.path_index}: payload mismatch"
                    )
                    if is_write:
                        self.stats.write_failed += 1
                    else:
                        self.stats.read_failed += 1
                    continue
                item.attempts += 1
                if item.attempts >= self.retry.max_attempts:
                    self.serving.record_failure(
                        f"node {self.node} client {routed.client_id} "
                        f"{routed.op} p{routed.path_index}: retries exhausted"
                    )
                    if is_write:
                        self.stats.write_failed += 1
                    else:
                        self.stats.read_failed += 1
                    continue
                self.serving.record_retry(
                    f"node {self.node} client {routed.client_id} "
                    f"{routed.op} attempt {item.attempts}"
                )
                retried.append(item)
            if retried:
                # Back off before the re-send (connection-level failure) and
                # requeue in order ahead of newer work so per-client create →
                # get ordering is preserved.
                sim.compute(self.retry.backoff_for(retried[0].attempts))
                self._queues[conn][:0] = retried
                self._backlog += len(retried)
        self._workers_left -= 1
        if self._workers_left == 0:
            self.backend.close_all()
            self.listener.close()  # completion signal for the accept loop
