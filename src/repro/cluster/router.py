"""Request routing for the sharded serving cluster.

The router is the cluster's brain: it maps every scheduled arrival to a
node under one of two policies, replicates writes across the ring, and
fails reads over around *suspected* nodes.  Like the load generator it is
a *pure function* of the spec and the schedule — the routing table is
computed once, identically, by the parent process (for the manifest) and
by every shard worker (to select its own slice), so no cross-process
coordination is ever needed and manifests stay byte-identical at any
``--jobs``.

Liveness comes from the :mod:`repro.cluster.detector` heartbeat timeline,
**never** from the spec's chaos schedule: the router only knows what the
gateway's failure detector observed (including its detection lag and any
gray-failure suspicions), exactly like a real deployment.  PR 7's
spec-oracle down-sets are gone.

Policies:

* **hash** — consistent hashing: each node projects ``HASH_REPLICAS``
  virtual points onto a ring; a client is served by the first node point
  at or after its own hash.  Adding/removing a node moves only the clients
  between it and its predecessor (the property that makes re-sharding
  cheap), and failover walks the ring to the next *live* node;
* **least-loaded** — sticky least-loaded assignment: a client is pinned,
  at its first arrival, to the live node with the fewest requests routed
  so far (ties break by index), and re-pinned the same way if its node is
  suspected when a request arrives.

Replication (factor R from the spec): every client-visible ``create`` is
accompanied by R-1 **replica writes** to the next distinct nodes in the
client's preference list, issued at the same arrival time with
``role="replica"`` (they cost shard capacity but are not client requests,
so availability counts stay honest).  A preference-list node that is
suspected at write time instead receives a **hinted handoff** fill,
scheduled at the detector's recovery point for that node — when the node
comes back, the gateway replays the writes it missed.  Reads route to the
first *live* node in preference order that actually holds the entry, so
an acknowledged write survives any single-node loss at R=2.

State follows routing: the SecureKeeper variant stores encrypted znodes
*in* each shard, so a ``get`` whose entry lives on no live node cannot
hit.  The router rewrites such reads into **fill** writes (read repair:
the gateway re-creates the entry on a live node) — and when the original
``create`` had been acknowledged, counts an **acknowledged write lost**,
the number the replication machinery exists to hold at zero.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field

from repro.cluster.detector import DetectorTimeline, build_detector
from repro.cluster.loadgen import Arrival
from repro.cluster.spec import ClusterSpec

# Virtual points per node on the consistent-hash ring.  Enough that the
# per-node share of clients concentrates near 1/N without making ring
# construction noticeable.
HASH_REPLICAS = 64

# Request verbs the node shards execute.
OP_CREATE = "create"  # write a fresh entry
OP_GET = "get"  # read an entry this shard holds
OP_FILL = "fill"  # failover fill: re-create on a cold shard
OP_FETCH = "fetch"  # stateless request (TaLoS GET)

# Who a routed request serves.
ROLE_CLIENT = "client"  # client-visible op; counts toward availability
ROLE_REPLICA = "replica"  # replica write issued alongside a create
ROLE_HANDOFF = "handoff"  # hinted handoff replayed at recovery

# Fault-row kind for arrivals shed because every node was suspected.
CLUSTER_ALL_DOWN = "cluster:all-down"

# Minimum spacing between hinted-handoff fills replayed at one recovery
# point.  The effective stagger is at least one heartbeat interval: the
# recovering shard is also re-absorbing its regular client share, so the
# replay must be a background trickle — replaying a big hint backlog as a
# 25 µs burst collapses the shard's queue right when it is most fragile.
HANDOFF_STAGGER_NS = 25_000


class ClusterUnavailable(ValueError):
    """Every node is suspected down; there is nowhere to route.

    Subclasses :class:`ValueError` for compatibility with callers that
    caught the untyped error this replaces.
    """


def _point(token: str) -> int:
    """Stable 64-bit hash-ring coordinate for ``token``."""
    return int.from_bytes(hashlib.sha256(token.encode()).digest()[:8], "big")


@dataclass(frozen=True)
class RoutedRequest:
    """One unit of shard work with its routing decision applied."""

    arrival_ns: int
    client_id: int
    op_index: int
    node: int
    op: str
    path_index: int
    failover: bool = False
    role: str = ROLE_CLIENT


@dataclass
class RoutingInfo:
    """What the router did, for reports and the cluster manifest."""

    policy: str
    assigned: list[int] = field(default_factory=list)  # client requests per node
    failovers: int = 0  # requests routed off their client's primary node
    fills: int = 0  # reads rewritten into fills (read repair)
    replica_writes: int = 0  # replica copies issued alongside creates
    handoffs: int = 0  # hinted-handoff fills replayed at recovery
    suspected_routes: int = 0  # requests steered around a suspected node
    lost_writes: int = 0  # acknowledged writes no live node held at read time
    all_down_shed: int = 0  # arrivals shed because every node was suspected
    all_down_window: tuple[int, int] | None = None  # first/last shed times

    def as_dict(self) -> dict:
        """Manifest-ready form (stable under json.dumps sort_keys)."""
        return {
            "policy": self.policy,
            "assigned": list(self.assigned),
            "failovers": self.failovers,
            "fills": self.fills,
            "replica_writes": self.replica_writes,
            "handoffs": self.handoffs,
            "suspected_routes": self.suspected_routes,
            "lost_writes": self.lost_writes,
            "all_down_shed": self.all_down_shed,
            "all_down_window": list(self.all_down_window)
            if self.all_down_window
            else None,
        }


class ConsistentHashRing:
    """The hash policy's ring, with liveness-aware lookup."""

    def __init__(self, nodes: int, replicas: int = HASH_REPLICAS) -> None:
        points: list[tuple[int, int]] = []
        for node in range(nodes):
            for replica in range(replicas):
                points.append((_point(f"node-{node}:replica-{replica}"), node))
        points.sort()
        self._keys = [key for key, _ in points]
        self._nodes = [node for _, node in points]
        self._node_count = nodes

    def preference_list(self, client_id: int, count: int) -> tuple[int, ...]:
        """First ``count`` *distinct* nodes at or after the client's point.

        Pure ring identity — liveness never changes a preference list, so
        replica placement is stable across failures (the property hinted
        handoff relies on: the recovered node knows exactly which entries
        were its to hold).
        """
        count = min(count, self._node_count)
        start = bisect.bisect_left(self._keys, _point(f"client-{client_id}"))
        prefs: list[int] = []
        total = len(self._nodes)
        for offset in range(total):
            node = self._nodes[(start + offset) % total]
            if node not in prefs:
                prefs.append(node)
                if len(prefs) == count:
                    break
        return tuple(prefs)

    def node_for(self, client_id: int, down: frozenset = frozenset()) -> int:
        """First live node at or after the client's ring point.

        Raises :class:`ClusterUnavailable` when the down-set covers every
        node — callers shed the request deterministically rather than
        routing it to a corpse.
        """
        start = bisect.bisect_left(self._keys, _point(f"client-{client_id}"))
        count = len(self._nodes)
        for offset in range(count):
            node = self._nodes[(start + offset) % count]
            if node not in down:
                return node
        raise ClusterUnavailable("every node is suspected down; nowhere to route")


def route_requests(
    spec: ClusterSpec,
    arrivals: list[Arrival],
    detector: DetectorTimeline | None = None,
) -> tuple[list[RoutedRequest], RoutingInfo]:
    """Apply the spec's policy to the schedule; pure and deterministic.

    ``detector`` defaults to the spec's own heartbeat timeline; passing
    one in lets callers (and tests) reuse a prebuilt timeline.
    """
    if detector is None:
        detector = build_detector(spec)
    info = RoutingInfo(policy=spec.policy, assigned=[0] * spec.nodes)
    ring = ConsistentHashRing(spec.nodes) if spec.policy == "hash" else None
    load = [0] * spec.nodes
    sticky: dict[int, int] = {}  # least-loaded: client → pinned node
    primary: dict[int, int] = {}  # client → first node it was given
    # (client, path) → [(node, holds_since_ns), ...]: where copies live.
    holders: dict[tuple[int, int], list[tuple[int, int]]] = {}
    # (client, path) → whether the create was acknowledged to the client.
    acked: dict[tuple[int, int], bool] = {}
    # recovery point → handoffs already replayed there (stagger counter).
    handoff_seq: dict[tuple[int, int], int] = {}
    stateless = spec.variant == "talos"
    replication = spec.effective_replication

    def pick_least_loaded(down: frozenset) -> int:
        best = None
        for node in range(spec.nodes):
            if node in down:
                continue
            if best is None or load[node] < load[best]:
                best = node
        if best is None:
            raise ClusterUnavailable(
                "every node is suspected down; nowhere to route"
            )
        return best

    def preference_list(client: int, pinned: int) -> tuple[int, ...]:
        if ring is not None:
            return ring.preference_list(client, replication)
        # Least-loaded: replicas are the next nodes after the pin, a
        # stable identity for as long as the pin holds.
        return tuple((pinned + i) % spec.nodes for i in range(replication))

    seq = 0
    routed: list[tuple[int, int, RoutedRequest]] = []  # (arrival, seq, req)

    def emit(request: RoutedRequest) -> None:
        nonlocal seq
        routed.append((request.arrival_ns, seq, request))
        seq += 1

    for arrival in arrivals:
        now = arrival.arrival_ns
        down = detector.down_set(now)
        client = arrival.client_id

        try:
            if ring is not None:
                coordinator = ring.node_for(client, down)
            else:
                node = sticky.get(client)
                if node is None or node in down:
                    node = pick_least_loaded(down)
                    sticky[client] = node
                coordinator = node
        except ClusterUnavailable:
            info.all_down_shed += 1
            first, last = info.all_down_window or (now, now)
            info.all_down_window = (min(first, now), max(last, now))
            continue

        prefs = preference_list(client, coordinator)
        if prefs and prefs[0] in down:
            info.suspected_routes += 1
        # Serve the client op from the first live preference; fall back to
        # the policy's coordinator when the whole preference list is down.
        target = next((n for n in prefs if n not in down), coordinator)

        primary.setdefault(client, target)
        failover = target != primary[client]

        if stateless:
            op, path_index = OP_FETCH, arrival.op_index
            node = target
        elif arrival.op_index % 2 == 0:
            op, path_index = OP_CREATE, arrival.op_index // 2
            node = target
            key = (client, path_index)
            holders[key] = [(node, now)]
            acked[key] = True
            # Replicate to the rest of the preference list: live nodes get
            # the copy now, suspected nodes get a hinted handoff replayed
            # at their detected recovery.
            for peer in prefs:
                if peer == node:
                    continue
                if peer not in down:
                    holders[key].append((peer, now))
                    info.replica_writes += 1
                    emit(
                        RoutedRequest(
                            arrival_ns=now,
                            client_id=client,
                            op_index=arrival.op_index,
                            node=peer,
                            op=OP_CREATE,
                            path_index=path_index,
                            failover=True,
                            role=ROLE_REPLICA,
                        )
                    )
                else:
                    recoveries = [
                        r for r in detector.recovery_points(peer) if r > now
                    ]
                    if not recoveries:
                        continue  # never came back; the hint dies with it
                    slot = handoff_seq.get((peer, recoveries[0]), 0)
                    handoff_seq[(peer, recoveries[0])] = slot + 1
                    stagger = max(HANDOFF_STAGGER_NS, spec.heartbeat_ns)
                    handoff_ns = recoveries[0] + slot * stagger
                    holders[key].append((peer, handoff_ns))
                    info.handoffs += 1
                    emit(
                        RoutedRequest(
                            arrival_ns=handoff_ns,
                            client_id=client,
                            op_index=arrival.op_index,
                            node=peer,
                            op=OP_FILL,
                            path_index=path_index,
                            failover=True,
                            role=ROLE_HANDOFF,
                        )
                    )
        else:
            path_index = arrival.op_index // 2
            key = (client, path_index)
            copies = holders.get(key, [])
            # Read from the first live preference that holds the entry by
            # now; preference order keeps reads on the ring primary except
            # while it is suspected (then they fail over to a replica).
            live_holders = [
                n
                for n, since in copies
                if since <= now and not detector.suspected(n, now)
            ]
            chosen = next((n for n in prefs if n in live_holders), None)
            if chosen is None and live_holders:
                chosen = live_holders[0]
            if chosen is not None:
                op, node = OP_GET, chosen
                if prefs and node != prefs[0]:
                    failover = True
            else:
                # No live copy: read repair — re-create on the serving
                # node.  If the client had been told its write succeeded,
                # that acknowledged write is now lost (the metric R>=2
                # keeps at zero through any single-node kill).
                op, node = OP_FILL, target
                holders.setdefault(key, []).append((node, now))
                info.fills += 1
                if acked.get(key, False) and copies:
                    info.lost_writes += 1
        load[node] += 1
        info.assigned[node] += 1
        if failover:
            info.failovers += 1
        emit(
            RoutedRequest(
                arrival_ns=now,
                client_id=client,
                op_index=arrival.op_index,
                node=node,
                op=op,
                path_index=path_index,
                failover=failover,
                role=ROLE_CLIENT,
            )
        )

    routed.sort(key=lambda item: (item[0], item[1]))
    return [request for _, _, request in routed], info


def requests_for_node(routed: list[RoutedRequest], node: int) -> list[RoutedRequest]:
    """The slice of the routing table one shard executes, in arrival order."""
    return [request for request in routed if request.node == node]
