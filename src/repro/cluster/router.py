"""Request routing for the sharded serving cluster.

The router is the cluster's brain: it maps every scheduled arrival to a
node under one of two policies and handles failover around node-loss
windows.  Like the load generator it is a *pure function* of the spec and
the schedule — the routing table is computed once, identically, by the
parent process (for the manifest) and by every shard worker (to select its
own slice), so no cross-process coordination is ever needed.

Policies:

* **hash** — consistent hashing: each node projects ``HASH_REPLICAS``
  virtual points onto a ring; a client is served by the first node point
  at or after its own hash.  Adding/removing a node moves only the clients
  between it and its predecessor (the property that makes re-sharding
  cheap), and failover walks the ring to the next *live* node;
* **least-loaded** — sticky least-loaded assignment: a client is pinned,
  at its first arrival, to the live node with the fewest requests routed
  so far (ties break by index), and re-pinned the same way if its node is
  down when a request arrives.

State follows routing: the SecureKeeper variant stores encrypted znodes
*in* each shard, so a ``get`` whose ``create`` landed on a different node
(the client failed over in between) cannot hit.  The router rewrites such
reads into **fill** writes — the gateway re-creates the entry on the new
node, modelling failover onto a cold replica — so correctness is preserved
and the cost of failover shows up honestly in the latency distribution.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field

from repro.cluster.loadgen import Arrival
from repro.cluster.spec import ClusterSpec

# Virtual points per node on the consistent-hash ring.  Enough that the
# per-node share of clients concentrates near 1/N without making ring
# construction noticeable.
HASH_REPLICAS = 64

# Request verbs the node shards execute.
OP_CREATE = "create"  # write a fresh entry
OP_GET = "get"  # read an entry this shard holds
OP_FILL = "fill"  # failover fill: re-create on a cold shard
OP_FETCH = "fetch"  # stateless request (TaLoS GET)


def _point(token: str) -> int:
    """Stable 64-bit hash-ring coordinate for ``token``."""
    return int.from_bytes(hashlib.sha256(token.encode()).digest()[:8], "big")


@dataclass(frozen=True)
class RoutedRequest:
    """One arrival with its routing decision applied."""

    arrival_ns: int
    client_id: int
    op_index: int
    node: int
    op: str
    path_index: int
    failover: bool = False


@dataclass
class RoutingInfo:
    """What the router did, for reports and the cluster manifest."""

    policy: str
    assigned: list[int] = field(default_factory=list)  # requests per node
    failovers: int = 0  # requests routed off their client's primary node
    fills: int = 0  # reads rewritten into failover fills


class ConsistentHashRing:
    """The hash policy's ring, with liveness-aware lookup."""

    def __init__(self, nodes: int, replicas: int = HASH_REPLICAS) -> None:
        points: list[tuple[int, int]] = []
        for node in range(nodes):
            for replica in range(replicas):
                points.append((_point(f"node-{node}:replica-{replica}"), node))
        points.sort()
        self._keys = [key for key, _ in points]
        self._nodes = [node for _, node in points]

    def node_for(self, client_id: int, down: frozenset = frozenset()) -> int:
        """First live node at or after the client's ring point."""
        start = bisect.bisect_left(self._keys, _point(f"client-{client_id}"))
        count = len(self._nodes)
        for offset in range(count):
            node = self._nodes[(start + offset) % count]
            if node not in down:
                return node
        raise ValueError("every node is down; nowhere to route")


def _down_set(spec: ClusterSpec, now_ns: int) -> frozenset:
    """Nodes inside a loss window at ``now_ns``."""
    down = set()
    for node, (start, end) in spec.down_windows().items():
        if start <= now_ns < end:
            down.add(node)
    return frozenset(down)


def route_requests(
    spec: ClusterSpec, arrivals: list[Arrival]
) -> tuple[list[RoutedRequest], RoutingInfo]:
    """Apply the spec's policy to the schedule; pure and deterministic."""
    info = RoutingInfo(policy=spec.policy, assigned=[0] * spec.nodes)
    ring = ConsistentHashRing(spec.nodes) if spec.policy == "hash" else None
    load = [0] * spec.nodes
    sticky: dict[int, int] = {}  # least-loaded: client → pinned node
    primary: dict[int, int] = {}  # client → first node it was given
    created_on: dict[tuple[int, int], int] = {}  # (client, path) → node
    stateless = spec.variant == "talos"

    def pick_least_loaded(down: frozenset) -> int:
        best = None
        for node in range(spec.nodes):
            if node in down:
                continue
            if best is None or load[node] < load[best]:
                best = node
        if best is None:
            raise ValueError("every node is down; nowhere to route")
        return best

    routed: list[RoutedRequest] = []
    for arrival in arrivals:
        down = _down_set(spec, arrival.arrival_ns)
        client = arrival.client_id
        if ring is not None:
            node = ring.node_for(client, down)
        else:
            node = sticky.get(client)
            if node is None or node in down:
                node = pick_least_loaded(down)
                sticky[client] = node
        primary.setdefault(client, node)
        failover = node != primary[client]
        if failover:
            info.failovers += 1
        load[node] += 1
        info.assigned[node] += 1

        if stateless:
            op, path_index = OP_FETCH, arrival.op_index
        elif arrival.op_index % 2 == 0:
            op, path_index = OP_CREATE, arrival.op_index // 2
            created_on[(client, path_index)] = node
        else:
            path_index = arrival.op_index // 2
            home = created_on.get((client, path_index))
            if home == node:
                op = OP_GET
            else:
                # The write landed elsewhere (or this shard lost it to a
                # failover switch): fill the cold shard instead of reading.
                op = OP_FILL
                created_on[(client, path_index)] = node
                info.fills += 1
        routed.append(
            RoutedRequest(
                arrival_ns=arrival.arrival_ns,
                client_id=client,
                op_index=arrival.op_index,
                node=node,
                op=op,
                path_index=path_index,
                failover=failover,
            )
        )
    return routed, info


def requests_for_node(routed: list[RoutedRequest], node: int) -> list[RoutedRequest]:
    """The slice of the routing table one shard executes, in arrival order."""
    return [request for request in routed if request.node == node]
