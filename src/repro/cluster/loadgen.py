"""Open-loop arrival generation for the serving cluster.

The cluster's load generator is **open loop**: request arrival times are
drawn up front from a seeded Poisson process and never react to service
times — exactly the methodology serving benchmarks need to see queueing
delay (a closed loop with thinking clients hides it).  The paper's own
load generators (curl loops, the SecureKeeper benchmark clients, §5.2) are
closed-loop; scaling to tens of thousands of simulated clients is where
the open-loop model becomes the honest one.

Determinism contract: :func:`generate_arrivals` is a *pure function* of
the :class:`~repro.cluster.spec.ClusterSpec` — it draws only from
:class:`~repro.sim.rng.DeterministicRng` streams derived from the cluster
seed and touches no simulation state.  Every sweep worker therefore
reconstructs the byte-identical schedule, whatever ``--jobs`` is, which is
what the cluster's manifest-digest CI gate rests on.

Arrivals are cluster-wide: inter-arrival gaps are exponential with the
spec's aggregate rate, and each arrival is assigned to a uniformly chosen
client that still has operations left.  A client's operations are thereby
issued in order (op ``k`` always precedes op ``k+1``), which the
SecureKeeper variant's create-then-get pairs rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.spec import ClusterSpec
from repro.sim.rng import DeterministicRng

ARRIVAL_STREAM = "cluster:arrivals"
CLIENT_STREAM = "cluster:clients"


@dataclass(frozen=True)
class Arrival:
    """One scheduled request: who issues it, and when."""

    arrival_ns: int
    client_id: int
    op_index: int


def generate_arrivals(spec: ClusterSpec) -> list[Arrival]:
    """The full cluster arrival schedule, sorted by arrival time.

    Pure and seeded: identical for every caller with an equal spec.
    """
    rng = DeterministicRng(spec.seed)
    gaps = rng.stream(ARRIVAL_STREAM)
    picks = rng.stream(CLIENT_STREAM)
    rate_per_ns = spec.arrival_rate_rps / 1e9

    # Clients with operations remaining, as a compact swap-remove pool.
    pool = list(range(spec.clients))
    remaining = [spec.ops_per_client] * spec.clients
    next_op = [0] * spec.clients

    arrivals: list[Arrival] = []
    now = 0.0
    for _ in range(spec.total_requests):
        now += gaps.expovariate(rate_per_ns)
        slot = picks.randrange(len(pool))
        client = pool[slot]
        arrivals.append(
            Arrival(arrival_ns=int(now), client_id=client, op_index=next_op[client])
        )
        next_op[client] += 1
        remaining[client] -= 1
        if remaining[client] == 0:
            pool[slot] = pool[-1]
            pool.pop()
    return arrivals


def interarrival_gaps_ns(arrivals: list[Arrival]) -> list[int]:
    """Successive arrival-time gaps (for distribution sanity checks)."""
    return [
        later.arrival_ns - earlier.arrival_ns
        for earlier, later in zip(arrivals, arrivals[1:])
    ]
