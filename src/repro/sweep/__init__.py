"""Shared-nothing parallel sweep engine.

The paper's methodology is sweep-shaped: every figure is many independent
seeded runs, and the fault/chaos campaigns inherited that shape.  This
package fans a declarative grid of (seed × workload × plan-parameter)
tasks across a spawn-context process pool — each worker runs one fully
isolated simulation (its own device, logger and trace store) and returns a
compact :class:`~repro.sweep.tasks.TaskResult` — then merges results in
deterministic task order, never completion order, so the merged manifest
is byte-identical regardless of worker count.
"""

from repro.sweep.engine import (
    WORKER_LOST,
    SweepError,
    SweepReport,
    resolve_jobs,
    run_sweep,
)
from repro.sweep.grid import expand_grid, parse_seeds
from repro.sweep.tasks import SweepTask, TaskResult, run_task

__all__ = [
    "WORKER_LOST",
    "SweepError",
    "SweepReport",
    "SweepTask",
    "TaskResult",
    "expand_grid",
    "parse_seeds",
    "resolve_jobs",
    "run_sweep",
    "run_task",
]
