"""Sweep task model and the worker-side runners.

A :class:`SweepTask` is plain picklable data — the spawn-context pool
ships it to a worker, which builds a fully isolated simulation (its own
``SgxDevice``, ``EventLogger`` and trace store), runs it, and returns a
compact :class:`TaskResult`.  Nothing is shared between workers, and the
parent never sees a live simulation object: shared-nothing by
construction.

Task kinds:

* ``campaign``    — one :func:`repro.faults.campaign.run_campaign` run;
* ``clusternode`` — one node shard of a :mod:`repro.cluster` serving run;
* ``netcampaign`` — one :func:`repro.faults.netcampaign.run_netcampaign` run;
* ``stressor``    — one :func:`repro.workloads.stressors.run_stressor` run
  (the EPC-pressure scenario matrix: ``--axis stressor=... --axis
  intensity=...``);
* ``optimizer``   — one :func:`repro.optimizer.run_rerun` analyze→optimize→
  rerun A/B cell; the task digest is the optimized trace's digest (the CI
  determinism gate compares it across ``--jobs`` values);
* ``selftest``    — a tiny pure-scheduler simulation (used by the engine's
  own tests and crash drills; costs milliseconds).

Control parameters (never part of the task key or metrics):

* ``trace_dir``  — write this task's trace to ``<trace_dir>/<slug>.db``
  instead of ``:memory:``;
* ``crash``      — ``"once"`` kills the worker process the first time the
  task runs (a sentinel in ``crash_dir`` makes the retry succeed);
  ``"always"`` kills it every time, exercising the bounded-retry
  ``sweep:worker-lost`` path;
* ``crash_dir``  — sentinel directory for ``crash="once"``.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field, replace
from typing import Any, Optional

# Parameters consumed by the engine/wrapper, not by the workload runners.
CONTROL_PARAMS = ("trace_dir", "crash", "crash_dir")


@dataclass(frozen=True)
class SweepTask:
    """One cell of a sweep grid.

    ``index`` is the task's position in the expanded grid — the canonical
    merge order.  ``key`` is the human-readable task key built from the
    payload parameters only, identical across worker counts.
    """

    index: int
    kind: str
    params: tuple  # sorted ((name, value), ...) pairs; hashable + picklable

    @property
    def key(self) -> str:
        """Canonical task key, e.g. ``campaign seed=7 loss_probability=0.02``."""
        payload = [(k, v) for k, v in self.params if k not in CONTROL_PARAMS]
        return " ".join([self.kind] + [f"{k}={v}" for k, v in payload])

    @property
    def slug(self) -> str:
        """Filesystem-safe unique name for per-task artifacts."""
        digest = hashlib.sha256(self.key.encode()).hexdigest()[:12]
        return f"task-{self.index:04d}-{digest}"

    def param(self, name: str, default: Any = None) -> Any:
        """Look up one parameter by name."""
        for k, v in self.params:
            if k == name:
                return v
        return default

    def payload(self) -> dict:
        """The parameters the workload runner consumes, as a dict."""
        return {k: v for k, v in self.params if k not in CONTROL_PARAMS}


@dataclass
class TaskResult:
    """Compact record a worker returns for one task.

    ``attempts`` and ``wall_seconds`` are execution facts, deliberately
    excluded from the deterministic manifest — a task retried after an
    unrelated worker crash still merges byte-identically.
    """

    index: int
    key: str
    status: str  # "ok" | "failed" | engine.WORKER_LOST
    digest: str = ""
    metrics: dict = field(default_factory=dict)
    faults: dict = field(default_factory=dict)
    error: str = ""
    attempts: int = 1
    wall_seconds: float = 0.0


class UnknownTaskKind(ValueError):
    """The grid named a task kind no runner exists for."""


def _campaign_plan(params: dict):
    """The campaign fault plan, with per-family grid overrides applied."""
    from repro.faults.campaign import default_plan
    from repro.faults.plan import EnclaveLossPlan, FaultPlan, OcallFaultPlan, TransientEpcPlan

    if not params.get("faults", True):
        return FaultPlan.disabled()
    plan = default_plan()
    if "loss_probability" in params:
        plan = replace(
            plan, enclave_loss=EnclaveLossPlan(probability=float(params["loss_probability"]))
        )
    if "epc_probability" in params:
        plan = replace(plan, epc=TransientEpcPlan(probability=float(params["epc_probability"])))
    if "ocall_error_probability" in params or "ocall_delay_probability" in params:
        base = plan.ocall or OcallFaultPlan()
        plan = replace(
            plan,
            ocall=replace(
                base,
                error_probability=float(
                    params.get("ocall_error_probability", base.error_probability)
                ),
                delay_probability=float(
                    params.get("ocall_delay_probability", base.delay_probability)
                ),
            ),
        )
    return plan


def _run_campaign_task(params: dict, db_path: str) -> tuple[str, dict, dict]:
    from repro.faults.campaign import run_campaign

    plan = _campaign_plan(params)
    result = run_campaign(
        int(params.get("seed", 0)),
        db_path=db_path,
        workers=int(params.get("workers", 3)),
        calls_per_worker=int(params.get("calls", 40)),
        plan=plan,
        use_injector=bool(params.get("faults", True)),
    )
    metrics = {
        "completed": result.completed_calls,
        "failed": result.failed_calls,
        "duration_ns": result.duration_ns,
        "recreates": result.recreates,
        "retries": result.recovery.get("retry", 0),
    }
    return result.digest, metrics, dict(result.injected)


def _netcampaign_plan(params: dict):
    """The serving chaos plan, with per-knob grid overrides applied."""
    from repro.faults.netcampaign import default_chaos_plan
    from repro.faults.plan import FaultPlan

    if not params.get("chaos", True):
        return FaultPlan.disabled()
    plan = default_chaos_plan()
    net = plan.network
    overrides = {}
    for param, attr in (
        ("reset_probability", "reset_probability"),
        ("delay_probability", "delay_probability"),
        ("delay_ns", "delay_ns"),
        ("short_write_probability", "short_write_probability"),
    ):
        if param in params:
            overrides[attr] = type(getattr(net, attr))(params[param])
    if overrides:
        plan = replace(plan, network=replace(net, **overrides))
    return plan


def _run_netcampaign_task(params: dict, db_path: str) -> tuple[str, dict, dict]:
    from repro.faults.netcampaign import run_netcampaign

    result = run_netcampaign(
        str(params.get("workload", "talos")),
        int(params.get("seed", 0)),
        db_path=db_path,
        requests=int(params.get("requests", 120)),
        clients=int(params.get("clients", 4)),
        operations_per_client=int(params.get("ops", 20)),
        plan=_netcampaign_plan(params),
    )
    metrics = dict(result.availability)
    metrics["duration_ns"] = result.duration_ns
    metrics["watchdog_detections"] = result.watchdog_detections
    return result.digest, metrics, dict(result.injected)


def _run_clusternode_task(params: dict, db_path: str) -> tuple[str, dict, dict]:
    from repro.cluster.node import run_clusternode

    return run_clusternode(params, db_path)


def _run_stressor_task(params: dict, db_path: str) -> tuple[str, dict, dict]:
    from repro.workloads.stressors import run_stressor_task

    return run_stressor_task(params, db_path)


def _run_optimizer_task(params: dict, db_path: str) -> tuple[str, dict, dict]:
    """One analyze→optimize→rerun A/B cell (the §5.2.2 loop, automated).

    The task digest is the *optimized* trace's digest — the CI determinism
    gate compares it across ``--jobs`` values.  With a ``trace_dir`` the
    baseline and optimized traces are kept next to the task's ``db_path``.
    """
    import shutil
    import tempfile

    from repro.optimizer import run_rerun

    if db_path == ":memory:":
        workdir = tempfile.mkdtemp(prefix="sgxperf-optimize-")
    else:
        workdir = db_path[: -len(".db")] if db_path.endswith(".db") else db_path
        os.makedirs(workdir, exist_ok=True)
    report = run_rerun(
        str(params.get("workload", "sqlite")),
        seed=int(params.get("seed", 0)),
        requests=int(params.get("requests", 200)),
        workdir=workdir,
    )
    if db_path == ":memory:":
        shutil.rmtree(workdir, ignore_errors=True)
    metrics = {
        "speedup_x1000": int(report.speedup * 1000),
        "transition_cut_x1000": int(report.transition_reduction * 1000),
        "baseline_transitions": report.baseline.transitions,
        "optimized_transitions": report.optimized.transitions,
        "fused": len(report.plan.fused),
        "switchless": len(report.plan.switchless),
        "batched": len(report.plan.batched),
        "fixed_findings": len(report.fixed_findings),
        "remaining_findings": len(report.remaining_findings),
    }
    return report.optimized.digest, metrics, {}


def _run_selftest_task(params: dict, db_path: str) -> tuple[str, dict, dict]:
    """A tiny deterministic scheduler workload — the engine's own drill."""
    from repro.sim.kernel import Simulation

    sim = Simulation(seed=int(params.get("seed", 0)))
    log: list[tuple[int, int]] = []

    def worker(i: int) -> None:
        for _ in range(int(params.get("rounds", 5))):
            sim.compute(sim.rng.jitter_ns(f"selftest-{i}", 1_000))
            log.append((i, sim.now_ns))

    for i in range(int(params.get("threads", 3))):
        sim.spawn(worker, i)
    sim.run()
    digest = hashlib.sha256(repr(log).encode()).hexdigest()
    return digest, {"events": len(log), "duration_ns": sim.now_ns}, {}


_RUNNERS = {
    "campaign": _run_campaign_task,
    "clusternode": _run_clusternode_task,
    "netcampaign": _run_netcampaign_task,
    "optimizer": _run_optimizer_task,
    "selftest": _run_selftest_task,
    "stressor": _run_stressor_task,
}

TASK_KINDS = tuple(sorted(_RUNNERS))


def _maybe_crash(task: SweepTask) -> None:
    """Honour the test-only ``crash`` control parameter.

    ``os._exit`` (not an exception) so the worker dies exactly the way a
    segfaulting or OOM-killed worker would — the pool sees a lost process,
    not a pickled traceback.
    """
    mode = task.param("crash")
    if not mode:
        return
    if mode == "always":
        os._exit(113)
    if mode == "once":
        crash_dir = task.param("crash_dir")
        if crash_dir is None:
            raise ValueError("crash='once' requires a crash_dir parameter")
        sentinel = os.path.join(crash_dir, f"{task.slug}.crashed")
        if not os.path.exists(sentinel):
            with open(sentinel, "w") as f:
                f.write("crashed once\n")
            os._exit(113)


def run_task(task: SweepTask) -> TaskResult:
    """Execute one task in this process and return its compact result.

    Workload exceptions are captured into a ``status="failed"`` record —
    deterministic failures merge deterministically instead of killing the
    sweep.  Only a lost worker process is handled above, by the engine.
    """
    import time

    runner = _RUNNERS.get(task.kind)
    if runner is None:
        raise UnknownTaskKind(
            f"unknown sweep task kind {task.kind!r}; known: {', '.join(TASK_KINDS)}"
        )
    _maybe_crash(task)
    trace_dir: Optional[str] = task.param("trace_dir")
    db_path = os.path.join(trace_dir, f"{task.slug}.db") if trace_dir else ":memory:"
    begin = time.perf_counter()
    try:
        digest, metrics, faults = runner(task.payload(), db_path)
    except Exception as exc:  # noqa: BLE001 - reported in the merged manifest
        return TaskResult(
            index=task.index,
            key=task.key,
            status="failed",
            error=f"{type(exc).__name__}: {exc}",
            wall_seconds=time.perf_counter() - begin,
        )
    return TaskResult(
        index=task.index,
        key=task.key,
        status="ok",
        digest=digest,
        metrics=metrics,
        faults=faults,
        wall_seconds=time.perf_counter() - begin,
    )
