"""The shared-nothing sweep executor and deterministic merger.

Execution model:

* every task runs in a **spawn-context** worker process — no inherited
  simulation state, no inherited SQLite connections (see the
  ``TraceDatabase`` pid guard), nothing shared but the task tuple;
* the parent merges results in **task-index order**, never completion
  order, so the merged manifest — and its digest — is byte-identical for
  ``jobs=1`` and ``jobs=8`` (the CI gate compares exactly this);
* a lost worker (crash, OOM-kill) breaks the pool for every in-flight
  future; the engine finishes what completed, then retries each lost task
  **in its own single-worker pool** so a reliably-crashing task cannot
  take innocent neighbours down with it.  After ``retries`` bounded
  retries a task is recorded as a ``sweep:worker-lost`` failure row
  instead of aborting the sweep.

Execution facts that legitimately vary between runs (attempt counts,
wall-clock) live on the report object and never enter the manifest.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Optional, Union

from repro.sweep.grid import expand_grid
from repro.sweep.tasks import SweepTask, TaskResult, run_task

WORKER_LOST = "sweep:worker-lost"

MANIFEST_HEADER = "# sgxperf-sweep-manifest v1"


class SweepError(RuntimeError):
    """The sweep engine could not run the grid at all."""


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit value, else ``SGXPERF_JOBS``, else cpu_count.

    ``0`` selects inline execution (tasks run serially in this process —
    no isolation, but no spawn cost; crash drills must not use it).
    """
    if jobs is None:
        env = os.environ.get("SGXPERF_JOBS", "").strip()
        if env:
            jobs = int(env)
        else:
            jobs = os.cpu_count() or 1
    jobs = int(jobs)
    if jobs < 0:
        raise SweepError(f"jobs must be >= 0, got {jobs}")
    return jobs


@dataclass
class SweepReport:
    """Everything one sweep produced, merged in task order."""

    tasks: list[SweepTask]
    results: list[TaskResult]  # task-index order, one per task
    jobs: int
    wall_seconds: float = 0.0

    @property
    def ok(self) -> int:
        """Tasks that completed and produced a digest."""
        return sum(1 for r in self.results if r.status == "ok")

    @property
    def failed(self) -> int:
        """Tasks whose workload raised (deterministic failures)."""
        return sum(1 for r in self.results if r.status == "failed")

    @property
    def lost(self) -> int:
        """Tasks recorded as ``sweep:worker-lost`` after bounded retries."""
        return sum(1 for r in self.results if r.status == WORKER_LOST)

    @property
    def manifest(self) -> str:
        """The deterministic merged manifest: byte-identical per grid spec.

        One row per task in index order — key, status, trace digest and the
        sorted-JSON metrics/fault-count record.  Worker count, attempt
        counts and wall-clock never appear here.
        """
        lines = [MANIFEST_HEADER, f"# tasks={len(self.results)}"]
        for result in self.results:
            record = json.dumps(
                {"metrics": result.metrics, "faults": result.faults, "error": result.error},
                sort_keys=True,
                separators=(",", ":"),
            )
            lines.append(
                "\t".join([result.key, result.status, result.digest or "-", record])
            )
        return "\n".join(lines) + "\n"

    @property
    def digest(self) -> str:
        """SHA-256 over the merged manifest."""
        return hashlib.sha256(self.manifest.encode()).hexdigest()

    def render_report(self) -> str:
        """Deterministic human-readable summary (no timing, no attempts)."""
        lines = [
            f"sweep: {len(self.results)} task(s) — "
            f"{self.ok} ok, {self.failed} failed, {self.lost} worker-lost"
        ]
        for result in self.results:
            line = f"  {result.key}: {result.status}"
            if result.status == "ok":
                line += f" digest={result.digest[:12]}"
                shown = {
                    k: result.metrics[k]
                    for k in sorted(result.metrics)
                    if k in ("completed", "failed", "success_rate", "duration_ns")
                }
                if shown:
                    line += " " + " ".join(f"{k}={v}" for k, v in shown.items())
            elif result.error:
                line += f" ({result.error})"
            lines.append(line)
        lines.append(f"manifest digest: {self.digest}")
        return "\n".join(lines)


def _pool_round(
    tasks: list[SweepTask], jobs: int
) -> tuple[dict[int, TaskResult], list[SweepTask]]:
    """Run one pool round; returns (completed results, tasks lost to crashes)."""
    completed: dict[int, TaskResult] = {}
    lost: list[SweepTask] = []
    with ProcessPoolExecutor(max_workers=jobs, mp_context=get_context("spawn")) as pool:
        futures = []
        for task in tasks:
            try:
                futures.append((task, pool.submit(run_task, task)))
            except BrokenProcessPool:
                lost.append(task)
        for task, future in futures:
            try:
                completed[task.index] = future.result()
            except BrokenProcessPool:
                lost.append(task)
    lost.sort(key=lambda t: t.index)
    return completed, lost


def run_sweep(
    spec: Optional[Union[dict, list]] = None,
    tasks: Optional[list[SweepTask]] = None,
    jobs: Optional[int] = None,
    retries: int = 1,
) -> SweepReport:
    """Fan a grid across the worker pool and merge in task order.

    Pass either a declarative ``spec`` mapping (see
    :func:`repro.sweep.grid.expand_grid`) or a pre-expanded ``tasks`` list.
    ``retries`` bounds how many isolated re-runs a crashed-worker task gets
    before it is recorded as a ``sweep:worker-lost`` row.
    """
    if (spec is None) == (tasks is None):
        raise SweepError("pass exactly one of spec= or tasks=")
    if tasks is None:
        tasks = expand_grid(spec) if isinstance(spec, dict) else list(spec)
    if sorted(t.index for t in tasks) != list(range(len(tasks))):
        raise SweepError("task indexes must be exactly 0..n-1 (the merge order)")
    jobs = resolve_jobs(jobs)
    begin = time.perf_counter()
    ordered = sorted(tasks, key=lambda t: t.index)

    if jobs == 0:
        results = {task.index: run_task(task) for task in ordered}
        return SweepReport(
            tasks=ordered,
            results=[results[i] for i in range(len(ordered))],
            jobs=jobs,
            wall_seconds=time.perf_counter() - begin,
        )

    results, lost = _pool_round(ordered, jobs)
    # Bounded, isolated retries: one fresh single-worker pool per attempt,
    # so a reliably-crashing task cannot break innocent neighbours again.
    for task in lost:
        attempts = 1
        while attempts <= retries:
            attempts += 1
            retried, lost_again = _pool_round([task], 1)
            if not lost_again:
                result = retried[task.index]
                result.attempts = attempts
                results[task.index] = result
                break
        else:
            results[task.index] = TaskResult(
                index=task.index,
                key=task.key,
                status=WORKER_LOST,
                error=f"worker process lost {attempts} time(s)",
                attempts=attempts,
            )
    return SweepReport(
        tasks=ordered,
        results=[results[i] for i in range(len(ordered))],
        jobs=jobs,
        wall_seconds=time.perf_counter() - begin,
    )
