"""Declarative sweep grid specs.

A spec is a small JSON-able mapping::

    {
        "kind": "campaign",                     # campaign | netcampaign | selftest
        "seeds": "0-15",                        # list, or "a-b" range, or "7,21,1337"
        "params": {"workers": 3, "calls": 40},  # applied to every task
        "grid": {"loss_probability": [0.0, 0.02, 0.05]}
    }

Expansion is fully deterministic: the cartesian product iterates grid axes
in sorted-name order (values in the order given), with the seed as the
innermost axis, and numbers each task with its grid ``index`` — the
canonical merge order for the engine, whatever the worker count.
"""

from __future__ import annotations

import itertools
from typing import Any, Union

from repro.sweep.tasks import SweepTask


class GridError(ValueError):
    """A sweep spec that cannot be expanded."""


def parse_seeds(spec: Union[str, int, list, tuple]) -> list[int]:
    """Seeds from a list, a single int, ``"a-b"`` (inclusive) or ``"a,b,c"``."""
    if isinstance(spec, int):
        return [spec]
    if isinstance(spec, (list, tuple)):
        return [int(s) for s in spec]
    text = str(spec).strip()
    if "," in text:
        return [int(part) for part in text.split(",") if part.strip()]
    dash = text.find("-", 1)  # position 0 would be a negative single seed
    if dash != -1:
        lo, hi = int(text[:dash]), int(text[dash + 1 :])
        if hi < lo:
            raise GridError(f"empty seed range {spec!r}")
        return list(range(lo, hi + 1))
    return [int(text)]


def expand_grid(spec: dict) -> list[SweepTask]:
    """Expand one spec into its deterministic, numbered task list."""
    if "kind" not in spec:
        raise GridError("sweep spec needs a 'kind'")
    kind = str(spec["kind"])
    seeds = parse_seeds(spec.get("seeds", [0]))
    base: dict[str, Any] = dict(spec.get("params", {}))
    grid: dict[str, list] = dict(spec.get("grid", {}))
    for name, values in grid.items():
        if not isinstance(values, (list, tuple)) or not values:
            raise GridError(f"grid axis {name!r} needs a non-empty list of values")
    axes = sorted(grid)
    tasks: list[SweepTask] = []
    for combo in itertools.product(*(grid[name] for name in axes)):
        for seed in seeds:
            params = dict(base)
            params.update(zip(axes, combo))
            params["seed"] = seed
            tasks.append(
                SweepTask(
                    index=len(tasks),
                    kind=kind,
                    params=tuple(sorted(params.items())),
                )
            )
    if not tasks:
        raise GridError("spec expanded to zero tasks")
    return tasks
