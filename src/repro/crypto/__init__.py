"""From-scratch cryptography used by the workloads.

Real algorithms (validated against standard vectors in the test suite)
paired with a virtual-time cost model, so workloads both *actually*
encrypt/hash their data and charge realistic compute for it.
"""

from repro.crypto.aes import (
    AES_NS_PER_BYTE,
    Aes128,
    SHA256_NS_PER_BYTE,
    aes128_ctr,
    aes_cost_ns,
    sha256_cost_ns,
)
from repro.crypto.hmac import hkdf_like, hmac_sha256, verify_hmac_sha256
from repro.crypto.sha256 import Sha256, sha256

__all__ = [
    "AES_NS_PER_BYTE",
    "Aes128",
    "SHA256_NS_PER_BYTE",
    "Sha256",
    "aes128_ctr",
    "aes_cost_ns",
    "hkdf_like",
    "hmac_sha256",
    "sha256",
    "sha256_cost_ns",
    "verify_hmac_sha256",
]
