"""Fast keyed stream cipher used on simulator hot paths.

Workloads like SecureKeeper encrypt every request payload.  Running the
from-scratch AES over megabytes of simulated traffic would dominate *real*
(host) time without changing any simulated result, so hot paths use this
xorshift-based keystream instead: keyed, deterministic, self-inverse, and
paired with the AES-CTR *cost model* for virtual time.

This is NOT a secure cipher and is not presented as one — it is a
cost-faithful stand-in.  The real AES-128-CTR (:mod:`repro.crypto.aes`)
is used where data volumes are small (session establishment, tests).
"""

from __future__ import annotations

from repro.crypto.sha256 import sha256

_MASK = 0xFFFFFFFFFFFFFFFF


def _keystream_words(seed: int, count: int):
    state = seed or 0x9E3779B97F4A7C15
    for _ in range(count):
        state ^= (state << 13) & _MASK
        state ^= state >> 7
        state ^= (state << 17) & _MASK
        yield state


def stream_xor(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """Encrypt/decrypt ``data`` (self-inverse) under ``key``/``nonce``.

    The seed is derived via (real) SHA-256 so distinct keys and nonces
    yield unrelated keystreams.
    """
    seed = int.from_bytes(sha256(key + nonce)[:8], "big")
    words = (len(data) + 7) // 8
    keystream = b"".join(
        w.to_bytes(8, "big") for w in _keystream_words(seed, words)
    )
    return bytes(a ^ b for a, b in zip(data, keystream))


# Virtual cost: matches AES-CTR on the modelled CPU (see repro.crypto.aes).
STREAM_SETUP_NS = 300
STREAM_NS_PER_BYTE = 0.6


def stream_cost_ns(nbytes: int) -> int:
    """Virtual cost of one stream_xor pass over ``nbytes``."""
    return int(STREAM_SETUP_NS + STREAM_NS_PER_BYTE * nbytes)
