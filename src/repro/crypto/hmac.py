"""HMAC-SHA256 from scratch (RFC 2104), over :mod:`repro.crypto.sha256`."""

from __future__ import annotations

from repro.crypto.sha256 import Sha256, sha256

_BLOCK = 64


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """Compute HMAC-SHA256 of ``message`` under ``key``."""
    if len(key) > _BLOCK:
        key = sha256(key)
    key = key.ljust(_BLOCK, b"\x00")
    inner = Sha256(bytes(k ^ 0x36 for k in key)).update(message).digest()
    return Sha256(bytes(k ^ 0x5C for k in key)).update(inner).digest()


def verify_hmac_sha256(key: bytes, message: bytes, tag: bytes) -> bool:
    """Constant-time-ish verification of an HMAC tag."""
    expected = hmac_sha256(key, message)
    if len(expected) != len(tag):
        return False
    diff = 0
    for a, b in zip(expected, tag):
        diff |= a ^ b
    return diff == 0


def hkdf_like(key: bytes, label: bytes, length: int = 32) -> bytes:
    """Simple HMAC-based key derivation (expand-only, HKDF-flavoured)."""
    output = b""
    counter = 1
    block = b""
    while len(output) < length:
        block = hmac_sha256(key, block + label + bytes([counter]))
        output += block
        counter += 1
    return output[:length]
