"""AES-128 from scratch (FIPS 197): ECB core and CTR mode.

The workloads genuinely encrypt their data (SecureKeeper payloads, TLS
records), so ciphertexts in traces and tests are real.  Correctness is
validated against the FIPS 197 / NIST SP 800-38A vectors in the test
suite.
"""

from __future__ import annotations

_SBOX = bytes.fromhex(
    "637c777bf26b6fc53001672bfed7ab76"
    "ca82c97dfa5947f0add4a2af9ca472c0"
    "b7fd9326363ff7cc34a5e5f171d83115"
    "04c723c31896059a071280e2eb27b275"
    "09832c1a1b6e5aa0523bd6b329e32f84"
    "53d100ed20fcb15b6acbbe394a4c58cf"
    "d0efaafb434d338545f9027f503c9fa8"
    "51a3408f929d38f5bcb6da2110fff3d2"
    "cd0c13ec5f974417c4a77e3d645d1973"
    "60814fdc222a908846eeb814de5e0bdb"
    "e0323a0a4906245cc2d3ac629195e479"
    "e7c8376d8dd54ea96c56f4ea657aae08"
    "ba78252e1ca6b4c6e8dd741f4bbd8b8a"
    "703eb5664803f60e613557b986c11d9e"
    "e1f8981169d98e949b1e87e9ce5528df"
    "8ca1890dbfe6426841992d0fb054bb16"
)

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


# Precomputed multiply-by-2 and multiply-by-3 tables for MixColumns.
_MUL2 = bytes(_xtime(i) for i in range(256))
_MUL3 = bytes(_xtime(i) ^ i for i in range(256))


def expand_key(key: bytes) -> list[bytes]:
    """AES-128 key schedule: 11 round keys of 16 bytes."""
    if len(key) != 16:
        raise ValueError("AES-128 needs a 16-byte key")
    words = [key[i : i + 4] for i in range(0, 16, 4)]
    for i in range(4, 44):
        temp = words[i - 1]
        if i % 4 == 0:
            rotated = temp[1:] + temp[:1]
            temp = bytes(_SBOX[b] for b in rotated)
            temp = bytes([temp[0] ^ _RCON[i // 4 - 1]]) + temp[1:]
        words.append(bytes(a ^ b for a, b in zip(words[i - 4], temp)))
    return [b"".join(words[i : i + 4]) for i in range(0, 44, 4)]


def _add_round_key(state: bytearray, round_key: bytes) -> None:
    for i in range(16):
        state[i] ^= round_key[i]


def _sub_bytes(state: bytearray) -> None:
    for i in range(16):
        state[i] = _SBOX[state[i]]


# State is column-major: byte r + 4*c is row r, column c.
_SHIFT_SRC = tuple(
    ((r + 4 * ((c + r) % 4)), (r + 4 * c)) for r in range(4) for c in range(4)
)


def _shift_rows(state: bytearray) -> None:
    original = bytes(state)
    for src, dst in _SHIFT_SRC:
        state[dst] = original[src]


def _mix_columns(state: bytearray) -> None:
    for c in range(4):
        i = 4 * c
        a0, a1, a2, a3 = state[i], state[i + 1], state[i + 2], state[i + 3]
        state[i] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3
        state[i + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3
        state[i + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3]
        state[i + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3]


class Aes128:
    """AES-128 block cipher (encryption direction only — CTR needs no more)."""

    block_size = 16

    def __init__(self, key: bytes) -> None:
        self._round_keys = expand_key(key)

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        state = bytearray(block)
        _add_round_key(state, self._round_keys[0])
        for round_index in range(1, 10):
            _sub_bytes(state)
            _shift_rows(state)
            _mix_columns(state)
            _add_round_key(state, self._round_keys[round_index])
        _sub_bytes(state)
        _shift_rows(state)
        _add_round_key(state, self._round_keys[10])
        return bytes(state)


def aes128_ctr(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """AES-128-CTR keystream XOR (encryption == decryption).

    ``nonce`` is 12 bytes; the low 4 bytes of the counter block count
    blocks, NIST-style.
    """
    if len(nonce) != 12:
        raise ValueError("CTR nonce must be 12 bytes")
    cipher = Aes128(key)
    out = bytearray(len(data))
    for block_index in range(0, (len(data) + 15) // 16):
        counter_block = nonce + (block_index + 1).to_bytes(4, "big")
        keystream = cipher.encrypt_block(counter_block)
        offset = block_index * 16
        chunk = data[offset : offset + 16]
        for i, byte in enumerate(chunk):
            out[offset + i] = byte ^ keystream[i]
    return bytes(out)


# Virtual-time cost model for the crypto the workloads charge.  AES-NI-era
# software AES runs at ~1-3 cycles/byte; SHA-256 at ~10 cycles/byte.
AES_NS_PER_BYTE = 0.6
AES_SETUP_NS = 300
SHA256_NS_PER_BYTE = 3.0
SHA256_SETUP_NS = 200


def aes_cost_ns(nbytes: int) -> int:
    """Virtual cost of AES-CTR over ``nbytes``."""
    return int(AES_SETUP_NS + AES_NS_PER_BYTE * nbytes)


def sha256_cost_ns(nbytes: int) -> int:
    """Virtual cost of SHA-256 over ``nbytes``."""
    return int(SHA256_SETUP_NS + SHA256_NS_PER_BYTE * nbytes)
