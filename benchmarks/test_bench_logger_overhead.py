"""Table 2 — performance overhead of the event logger.

Paper: +≈1,366 ns per logged ecall, +≈1,320 ns per logged ocall,
+≈1,076 ns per counted AEX, +≈1,118 ns per traced AEX, ≈11.5 AEXs per
45.4 ms ecall.
"""

from conftest import run_once

from repro.bench import run_table2


def test_logger_overhead(benchmark):
    result = run_once(benchmark, run_table2, calls=1_000, long_calls=20)
    print()
    print(result.render())

    # (1) single ecall: native ~4,205 ns, logged ~5,572 ns.
    assert abs(result.native_single_ns - 4_205) < 120
    assert abs(result.logged_single_ns - 5_572) < 160
    assert abs(result.single_overhead_ns - 1_366) < 120

    # (2) ecall + ocall: native ~8,013 ns, ocall-only overhead ~1,320 ns.
    assert abs(result.native_ocall_ns - 8_013) < 200
    assert abs(result.logged_ocall_ns - 10_699) < 260
    assert abs(result.ocall_only_overhead_ns - 1_320) < 160

    # (3) long ecall: ~45,377 us with ~11.5 AEXs per call.
    assert abs(result.long_logged_us - 45_377) < 450
    assert abs(result.aex_per_call_counting - 11.51) < 0.6
    assert abs(result.counting_overhead_per_aex_ns - 1_076) < 200
    assert abs(result.tracing_overhead_per_aex_ns - 1_118) < 200
    # Tracing costs more than counting, per AEX.
    assert result.tracing_overhead_per_aex_ns > result.counting_overhead_per_aex_ns
