"""Sweep engine: determinism across worker counts, and parallel scaling.

The sweep engine's contract is *shared-nothing determinism*: the merged
manifest is byte-identical for ``--jobs 1`` and ``--jobs 4`` (the first
test, which runs everywhere).  The second test measures the point of the
exercise — near-linear wall-clock scaling on a 16-seed fault-campaign
grid — and therefore skips on machines with fewer than 4 CPUs (the
GitHub CI runners have 4).
"""

from __future__ import annotations

import os

import pytest

from conftest import run_once

from repro.sweep import run_sweep

SEEDS = "0-15"  # 16 single-seed campaign tasks
MIN_SPEEDUP = 2.0


def _grid(workers: int, calls: int) -> dict:
    return {
        "kind": "campaign",
        "seeds": SEEDS,
        "params": {"workers": workers, "calls": calls},
    }


def test_bench_sweep_digest_equality(benchmark):
    """jobs=1 and jobs=4 must merge to byte-identical manifests."""
    spec = _grid(workers=2, calls=8)
    serial = run_sweep(spec=spec, jobs=1)
    fanned = run_once(benchmark, run_sweep, spec=spec, jobs=4)
    assert serial.ok == fanned.ok == 16
    assert serial.manifest == fanned.manifest
    assert serial.digest == fanned.digest


def test_bench_sweep_parallel_speedup(benchmark):
    """4 workers must finish the 16-seed grid >= 2x faster than 1."""
    cores = os.cpu_count() or 1
    if cores < 4:
        pytest.skip(f"needs >= 4 CPUs for a meaningful scaling run (have {cores})")
    spec = _grid(workers=3, calls=40)
    serial = run_sweep(spec=spec, jobs=1)
    fanned = run_once(benchmark, run_sweep, spec=spec, jobs=4)
    assert serial.digest == fanned.digest
    speedup = serial.wall_seconds / fanned.wall_seconds
    print(
        f"\nsweep scaling (16 campaign tasks): jobs=1 {serial.wall_seconds:.2f}s, "
        f"jobs=4 {fanned.wall_seconds:.2f}s, speedup {speedup:.2f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"4-worker sweep only {speedup:.2f}x faster than serial (need >= {MIN_SPEEDUP}x)"
    )
