"""Streaming analyser: throughput and peak-memory gates on a 10× trace.

ROADMAP item 3's acceptance bar: on a trace an order of magnitude larger
than the workload defaults, the streaming analyser must be at least as
fast as the in-memory reference twin while holding at most 25% of its
peak traced memory — and still produce the byte-identical report.  The
in-memory path materialises every row as a Python tuple before building
columns; the streaming path's working set is one column batch plus the
per-call-site accumulators (~24 bytes of retained state per row).

Memory is measured with :mod:`tracemalloc` (both paths measured under the
same instrumentation); throughput is timed in a separate, uninstrumented
pass.  A parallel-scaling assertion is CPU-gated like the sweep scaling
benchmark; equivalence of ``--jobs 4`` is asserted everywhere.
"""

from __future__ import annotations

import os
import time
import tracemalloc

import pytest

from conftest import run_once

from repro.perf.analysis.report import Analyzer
from repro.perf.analysis.streaming import StreamingAnalyzer
from repro.perf.database import TraceDatabase

# 10× the default glamdring recording (signs=4 → ~25k calls).
SIGNS_10X = 40
CHUNK = 8_192
MAX_MEMORY_FRACTION = 0.25
MIN_THROUGHPUT_RATIO = 1.0


@pytest.fixture(scope="module")
def big_trace(tmp_path_factory) -> str:
    from repro.workloads.recorders import record_glamdring

    path = str(tmp_path_factory.mktemp("bench-streaming") / "big.db")
    record_glamdring(path, seed=0, signs=SIGNS_10X)
    return path


def _timed(fn) -> tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _traced_peak(fn) -> int:
    tracemalloc.start()
    try:
        fn()
        return tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()


def test_bench_streaming_throughput_and_memory(big_trace, benchmark):
    """≥1× in-memory throughput at ≤25% of its peak memory, byte-identical."""
    with TraceDatabase(big_trace) as db:
        rows = db.calls_count()
        assert rows >= 200_000, f"10x trace unexpectedly small: {rows} calls"

        in_memory_s, ref = _timed(lambda: Analyzer(db).run())
        streaming_s, got = run_once(
            benchmark,
            lambda: _timed(lambda: StreamingAnalyzer(db, chunk_events=CHUNK).run()),
        )
        assert got.render_text() == ref.render_text()
        assert got.findings == ref.findings

        peak_in_memory = _traced_peak(lambda: Analyzer(db).run())
        peak_streaming = _traced_peak(
            lambda: StreamingAnalyzer(db, chunk_events=CHUNK).run()
        )

    ratio = in_memory_s / streaming_s
    fraction = peak_streaming / peak_in_memory
    print(
        f"\nstreaming analysis ({rows} calls): in-memory {in_memory_s:.2f}s "
        f"({rows / in_memory_s:,.0f} rows/s, peak {peak_in_memory / 1e6:.1f} MB), "
        f"streaming {streaming_s:.2f}s ({rows / streaming_s:,.0f} rows/s, "
        f"peak {peak_streaming / 1e6:.1f} MB) — {ratio:.2f}x throughput at "
        f"{fraction:.1%} of peak memory"
    )
    assert ratio >= MIN_THROUGHPUT_RATIO, (
        f"streaming only {ratio:.2f}x the in-memory throughput "
        f"(need >= {MIN_THROUGHPUT_RATIO}x)"
    )
    assert fraction <= MAX_MEMORY_FRACTION, (
        f"streaming peak memory {fraction:.1%} of in-memory "
        f"(need <= {MAX_MEMORY_FRACTION:.0%})"
    )


def test_bench_parallel_equivalence_and_scaling(big_trace, benchmark):
    """--jobs 4 is byte-identical everywhere; faster where cores exist."""
    with TraceDatabase(big_trace) as db:
        serial_s, ref = _timed(lambda: StreamingAnalyzer(db, chunk_events=CHUNK).run())
        parallel_s, got = run_once(
            benchmark,
            lambda: _timed(
                lambda: StreamingAnalyzer(db, chunk_events=CHUNK, jobs=4).run()
            ),
        )
    assert got.render_text() == ref.render_text()
    assert got.findings == ref.findings
    print(
        f"\nparallel analysis: jobs=1 {serial_s:.2f}s, jobs=4 {parallel_s:.2f}s "
        f"({serial_s / parallel_s:.2f}x)"
    )
    cores = os.cpu_count() or 1
    if cores < 4:
        pytest.skip(f"scaling assertion needs >= 4 CPUs (have {cores})")
    # Sharded fold + sequential merge: expect a real win, not linearity
    # (the coordinator's sync/paging/fault passes stay sequential).
    assert parallel_s < serial_s
