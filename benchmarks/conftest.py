"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures.  The
simulations are deterministic, so a single round suffices; what
pytest-benchmark measures is the (real) cost of running the simulation,
while the *reproduced numbers* are printed and asserted against the
paper's bands.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
