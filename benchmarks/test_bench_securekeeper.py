"""Figures 7/8 + §5.2.4 — SecureKeeper under full load.

Paper: 2 ecalls / 6 ocalls (2 and 3 called), means ≈14 µs and ≈18 µs
(4-6× the transition cost), 18 sync ocalls during the connect phase,
histogram mode around 15 µs.
"""

import numpy as np
from conftest import run_once

from repro.bench import run_figures_7_8


def test_securekeeper_profile(benchmark):
    result = run_once(benchmark, run_figures_7_8, clients=8, operations_per_client=40)
    print()
    print(result.render())

    assert result.distinct_ecalls == 2
    assert result.distinct_ocalls_called == 3
    # Ecall means in the paper's band (≈14 and ≈18 µs).
    assert 10.0 <= result.client_mean_us <= 18.0
    assert 14.0 <= result.zk_mean_us <= 22.0
    # "≈4-6× the transition cost" — wide band for the ratio.
    assert 3.5 <= result.zk_mean_us / result.transition_us <= 10.0
    # Contention on the connection map produced sync ocalls (paper: 18).
    assert 8 <= result.sync_ocalls <= 30
    # Figure 7's shape: unimodal with the mode between 10 and 16 µs.
    counts = np.asarray(result.histogram.counts)
    edges = np.asarray(result.histogram.edges_ns)
    mode_us = edges[int(counts.argmax())] / 1000.0
    assert 9.0 <= mode_us <= 16.0
    # Figure 8's scatter covers the whole run.
    assert len(result.scatter_starts_ns) == len(result.scatter_durations_ns) > 100
    span = result.scatter_starts_ns.max() - result.scatter_starts_ns.min()
    assert span > 0
    # End-to-end correctness: every get round-tripped through the proxy.
    assert result.verified_gets == 8 * 40 // 2
