"""Figure 5 + §5.2.1 — TaLoS with nginx.

Paper: interface 207 ecalls / 61 ocalls, of which 61 and 10 were called
27,631 and 28,969 times per 1000 requests; 60.78 % of ecalls and 73.69 %
of ocalls shorter than 10 µs; call graph dominated by the ERR_* polling
around SSL_read and the read/write ocalls.
"""

from conftest import run_once

from repro.bench import run_figure5


def test_talos_call_graph(benchmark):
    result = run_once(benchmark, run_figure5, requests=150)
    print()
    print(result.render())

    assert result.interface_ecalls == 207
    assert result.interface_ocalls == 61
    assert result.distinct_ecalls_called == 61
    # Per-request event rates: paper 27.6 ecalls and 29.0 ocalls.
    ecalls_per_req = result.ecall_events / result.requests
    ocalls_per_req = result.ocall_events / result.requests
    assert 24 <= ecalls_per_req <= 31
    assert 25 <= ocalls_per_req <= 33
    # Short-call shares in the paper's neighbourhood.
    assert 0.55 <= result.ecall_short_fraction <= 0.80
    assert 0.60 <= result.ocall_short_fraction <= 0.88
    # The figure's signature edges exist with per-request multiplicity.
    edges = {(p, c): n for p, c, n in result.top_edges}
    assert edges[("sgx_ecall_SSL_write", "enclave_ocall_write")] >= 10 * result.requests
    assert edges[("sgx_ecall_SSL_do_handshake", "enclave_ocall_read")] >= result.requests
    assert "digraph" in result.dot and "style=dashed" in result.dot
