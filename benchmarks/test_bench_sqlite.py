"""Figure 6 (left) + §5.2.2 — SQLite inserts, native vs enclave vs merged.

Paper: native ≈23,087 requests/s; enclavised 0.57×; merging the
lseek+write ocall pair recovers to 0.76× (+33 %).
"""

from conftest import run_once

from repro.sgx.constants import PatchLevel
from repro.sgx.device import SgxDevice
from repro.sim.process import SimProcess
from repro.workloads.minisql import SQLITE_SYSCALL_COSTS, SqlBuild, run_sql_benchmark


def _run_all(requests: int):
    rates = {}
    for build in (SqlBuild.NATIVE, SqlBuild.ENCLAVE, SqlBuild.MERGED):
        process = SimProcess(seed=0, syscall_costs=SQLITE_SYSCALL_COSTS)
        device = SgxDevice(process.sim, patch_level=PatchLevel.BASELINE)
        result = run_sql_benchmark(build, requests=requests, process=process, device=device)
        rates[build] = result.requests_per_second
    return rates


def test_sqlite_insert_throughput(benchmark):
    rates = run_once(benchmark, _run_all, 300)
    native = rates[SqlBuild.NATIVE]
    enclave_ratio = rates[SqlBuild.ENCLAVE] / native
    merged_ratio = rates[SqlBuild.MERGED] / native
    gain = rates[SqlBuild.MERGED] / rates[SqlBuild.ENCLAVE] - 1.0
    print()
    print(f"native:  {native:10,.0f} req/s   (paper ~23,087)")
    print(f"enclave: {rates[SqlBuild.ENCLAVE]:10,.0f} req/s = {enclave_ratio:.2f}x (paper 0.57x)")
    print(
        f"merged:  {rates[SqlBuild.MERGED]:10,.0f} req/s = {merged_ratio:.2f}x "
        f"(+{gain:.0%}; paper 0.76x, +33%)"
    )
    # Shape assertions: who wins, by roughly what factor.
    assert 18_000 <= native <= 30_000
    assert 0.40 <= enclave_ratio <= 0.70
    assert 0.55 <= merged_ratio <= 0.90
    assert merged_ratio > enclave_ratio  # merging always helps
    assert 0.15 <= gain <= 0.45  # in the +33% neighbourhood
