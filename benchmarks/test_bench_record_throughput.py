"""Recording throughput: buffered fast path vs the seed recording path.

The paper's logger stays cheap by buffering events per thread in memory
and serialising off the critical path (§4.1).  This benchmark measures
recorded events per *wall-clock* second on a Table-2-style ecall+ocall
workload through both implementations:

* **seed path** — :class:`LegacyEventLogger` (one ``CallEvent`` dataclass
  per event, row-at-a-time writes) into an untuned, eagerly-indexed
  :class:`TraceDatabase`, i.e. the original pipeline's behaviour;
* **fast path** — :class:`EventLogger` (per-thread flat-tuple buffers,
  batched drains) into the tuned bulk writer (WAL-style pragmas, one
  transaction per batch, deferred indexes).

Both paths charge identical virtual time, so the traces must be
byte-identical — same ``calls`` rows and the same rendered analyser
report — while the fast path must record at least 3× the events/second.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.perf.analysis import Analyzer
from repro.perf.database import TraceDatabase
from repro.perf.legacy import LegacyEventLogger
from repro.perf.logger import AexMode
from repro.perf.logger import EventLogger
from repro.sdk.errors import SgxStatus
from repro.sgx.device import SgxDevice
from repro.sim.loader import Library
from repro.sim.process import SimProcess

ITERATIONS = 30_000  # ecall+ocall pairs per measured run
WARMUP = 500
MIN_SPEEDUP = 3.0


class _OcallTable:
    """Minimal application ocall table (one no-op entry)."""

    def __init__(self):
        self.names = ["ocall_nop"]
        self._entries = [lambda: None]

    def entry(self, index: int):
        return self._entries[index]


class _Named:
    def __init__(self, name):
        self.name = name


class _Definition:
    def __init__(self, ecall_names):
        self.ecalls = [_Named(n) for n in ecall_names]


class _Enclave:
    def __init__(self):
        self.enclave_id = 1
        self.config = _Named("bench_enclave")
        self.config.tcs_count = 1
        self.size_pages = 64
        self.base_vaddr = 0x10_0000


class _Runtime:
    def __init__(self):
        self.definition = _Definition(["ecall_null"])
        self.enclave = _Enclave()


class _BenchUrts:
    """Just enough URTS surface for the logger: a device and one enclave.

    Keeping the real URTS (and its transition modelling) out of the loop
    makes the logger + trace store the dominant wall-clock cost, which is
    what this benchmark compares.  The runtime resolves ecall names the
    same way the real URTS bookkeeping does.
    """

    def __init__(self, device: SgxDevice) -> None:
        self.device = device
        self._runtimes = {1: _Runtime()}

    def runtimes(self) -> dict:
        return self._runtimes


def _run_recording(logger_cls, db: TraceDatabase):
    """Record ITERATIONS ecall+ocall pairs; returns (db, events, seconds)."""
    process = SimProcess(seed=0)
    sim = process.sim
    urts = _BenchUrts(SgxDevice(sim))
    table = _OcallTable()

    def app_sgx_ecall(enclave_id, index, ocall_table, args):
        # A Table-2-style null ecall that issues one null ocall through
        # the (substituted) table — the workload is pure transition +
        # logging cost, as in the paper's overhead benchmark.  Returns the
        # real URTS convention: ``(status, return value)``.
        ocall_table.entry(0)()
        return SgxStatus.SGX_SUCCESS, 0

    app = Library("libapp_urts.so", {"sgx_ecall": app_sgx_ecall})
    process.loader.load(app)
    logger = logger_cls(
        process, urts, database=db, aex_mode=AexMode.OFF, trace_paging=False
    )
    logger.install()
    sgx_ecall = process.loader.resolve("sgx_ecall")
    for _ in range(WARMUP):
        sgx_ecall(1, 0, table, ())
    events_before = logger.events_recorded
    begin = time.perf_counter()
    for _ in range(ITERATIONS):
        sgx_ecall(1, 0, table, ())
    elapsed = time.perf_counter() - begin
    events = logger.events_recorded - events_before
    logger.uninstall()
    logger.finalize()
    return db, events, elapsed


def _seed_path():
    return _run_recording(
        LegacyEventLogger, TraceDatabase(tuned=False, defer_indexes=False)
    )


def _fast_path():
    return _run_recording(EventLogger, TraceDatabase())


def test_record_throughput(benchmark):
    seed_db, seed_events, seed_s = _seed_path()
    fast_db, fast_events, fast_s = run_once(benchmark, _fast_path)

    seed_eps = seed_events / seed_s
    fast_eps = fast_events / fast_s
    speedup = fast_eps / seed_eps
    print()
    print("Recording throughput (ecall+ocall workload, wall clock)")
    print(f"  seed path: {seed_events} events in {seed_s:6.3f} s = {seed_eps:10,.0f} events/s")
    print(f"  fast path: {fast_events} events in {fast_s:6.3f} s = {fast_eps:10,.0f} events/s")
    print(f"  speedup: {speedup:.2f}x (required: >= {MIN_SPEEDUP}x)")

    # Same number of events recorded, and byte-identical trace contents:
    # identical virtual-time charges mean identical rows.
    assert fast_events == seed_events == 2 * ITERATIONS
    seed_rows = seed_db.execute("SELECT * FROM calls ORDER BY id")
    fast_rows = fast_db.execute("SELECT * FROM calls ORDER BY id")
    assert fast_rows == seed_rows

    # Byte-identical analyser output on both traces.
    seed_report = Analyzer(seed_db).run().render_text()
    fast_report = Analyzer(fast_db).run().render_text()
    assert fast_report == seed_report

    assert speedup >= MIN_SPEEDUP, (
        f"fast path only {speedup:.2f}x over the seed recording path"
    )
