"""Figure 6 (right) + §5.2.3 — Glamdring-partitioned LibreSSL signing.

Paper: native 145 signs/s vs 33.88 enclavised (≈0.23×); moving
``bn_mul_recursive`` inside yields 2.16× (2.66× under Spectre, 2.87×
under L1TF); ``bn_sub_part_words`` accounts for 99.5 % of 6.6 M ecalls
with a ≈3 µs mean, i.e. basically the transition time.
"""

from conftest import run_once

from repro.perf.logger import AexMode, EventLogger
from repro.sgx.constants import PatchLevel
from repro.sgx.device import SgxDevice
from repro.sim.process import SimProcess
from repro.workloads.glamdring import (
    GlamdringSigner,
    SignerBuild,
    make_certificate,
    run_signing_benchmark,
)


def _run_levels(signs: int):
    rates = {}
    for patch in (PatchLevel.BASELINE, PatchLevel.SPECTRE, PatchLevel.L1TF):
        for build in (SignerBuild.NATIVE, SignerBuild.PARTITIONED, SignerBuild.OPTIMIZED):
            if build is SignerBuild.NATIVE and patch is not PatchLevel.BASELINE:
                rates[(patch, build)] = rates[(PatchLevel.BASELINE, build)]
                continue
            process = SimProcess(seed=0)
            device = SgxDevice(process.sim, patch_level=patch)
            result = run_signing_benchmark(build, signs=signs, process=process, device=device)
            rates[(patch, build)] = result.signs_per_second
    return rates


def test_signing_speedups(benchmark):
    rates = run_once(benchmark, _run_levels, 4)
    native = rates[(PatchLevel.BASELINE, SignerBuild.NATIVE)]
    part = rates[(PatchLevel.BASELINE, SignerBuild.PARTITIONED)]
    print()
    print(f"native:      {native:6.1f} signs/s (paper 145)")
    print(f"partitioned: {part:6.1f} signs/s (paper 33.88, 0.23x)")
    speedups = {}
    for patch in (PatchLevel.BASELINE, PatchLevel.SPECTRE, PatchLevel.L1TF):
        speedup = (
            rates[(patch, SignerBuild.OPTIMIZED)]
            / rates[(patch, SignerBuild.PARTITIONED)]
        )
        speedups[patch] = speedup
        print(f"speed-up @ {patch.value:9}: {speedup:.2f}x")
    # Shape: native ~5x the enclave build; optimisation >2x; speed-up grows
    # with transition cost (paper: 2.16 -> 2.66 -> 2.87).
    assert 100 <= native <= 200
    assert 0.15 <= part / native <= 0.30
    assert 1.9 <= speedups[PatchLevel.BASELINE] <= 2.9
    assert speedups[PatchLevel.SPECTRE] > speedups[PatchLevel.BASELINE]
    assert speedups[PatchLevel.L1TF] > speedups[PatchLevel.SPECTRE]


def test_sub_part_words_dominates(benchmark):
    def traced_run():
        process = SimProcess(seed=0)
        device = SgxDevice(process.sim)
        signer = GlamdringSigner(process, device, SignerBuild.PARTITIONED)
        logger = EventLogger(process, signer.urts, aex_mode=AexMode.OFF, trace_paging=False)
        logger.install()
        for serial in range(2):
            signer.sign(make_certificate(serial))
        logger.uninstall()
        return logger.finalize()

    db = run_once(benchmark, traced_run)
    ecalls = db.calls(kind="ecall")
    subs = [c for c in ecalls if c.name == "ecall_bn_sub_part_words"]
    share = len(subs) / len(ecalls)
    mean_us = sum(c.duration_ns for c in subs) / len(subs) / 1000.0
    per_sign = len(subs) / 2
    print()
    print(
        f"bn_sub_part_words: {share:.1%} of ecalls (paper 99.5%), "
        f"mean {mean_us:.1f} us (paper ~3 us), {per_sign:.0f} calls/sign (paper ~6.5k)"
    )
    assert share > 0.97
    assert 2.0 <= mean_us <= 6.5  # "basically the transition time"
    assert 5_000 <= per_sign <= 8_000
