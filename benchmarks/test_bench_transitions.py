"""§2.3.1 — enclave transition cost per mitigation level.

Paper: one EENTER+EEXIT round-trip costs ≈2,130 ns unpatched, ≈3,850 ns
with the Spectre fixes (≈1.74×) and ≈4,890 ns with the L1TF microcode
(≈2.24×).
"""

from conftest import run_once

from repro.bench import run_switchless_microbench, run_transition_experiment
from repro.sgx.constants import PatchLevel


def test_switchless_vs_eenter(benchmark):
    """The optimizer's switchless runtime vs the regular ecall path."""
    result = run_once(benchmark, run_switchless_microbench, calls=500)
    print()
    print(result.render())
    by_mode = {row.mode: row for row in result.rows}
    # Regular path: ~4.2 us per empty ecall plus the logger's per-call
    # recording overhead (both runs pay it), one EENTER/EEXIT pair per call.
    assert 4_500 < by_mode["eenter"].per_call_ns < 7_000
    assert by_mode["eenter"].ecalls >= 600  # warm-up + measured calls
    # Switchless: the worker's single service ecall instead of one per
    # call, and well under half the per-call cost.
    assert by_mode["switchless"].ecalls <= 5
    assert by_mode["switchless"].transitions < by_mode["eenter"].transitions / 20
    assert result.speedup > 2.0


def test_transition_costs(benchmark):
    result = run_once(benchmark, run_transition_experiment, calls=500)
    print()
    print(result.render())
    by_level = {row.patch_level: row for row in result.rows}
    assert by_level[PatchLevel.BASELINE].round_trip_ns == 2_130
    assert by_level[PatchLevel.SPECTRE].round_trip_ns == 3_850
    assert by_level[PatchLevel.L1TF].round_trip_ns == 4_890
    # The paper's ratios: 1.74x and 2.24x over baseline.
    assert abs(by_level[PatchLevel.SPECTRE].vs_baseline - 1.81) < 0.15
    assert abs(by_level[PatchLevel.L1TF].vs_baseline - 2.30) < 0.15
    # Empty-ecall cost grows strictly with the mitigation level.
    ecall_costs = [by_level[level].empty_ecall_ns for level in PatchLevel]
    assert ecall_costs == sorted(ecall_costs)
