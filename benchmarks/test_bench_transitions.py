"""§2.3.1 — enclave transition cost per mitigation level.

Paper: one EENTER+EEXIT round-trip costs ≈2,130 ns unpatched, ≈3,850 ns
with the Spectre fixes (≈1.74×) and ≈4,890 ns with the L1TF microcode
(≈2.24×).
"""

from conftest import run_once

from repro.bench import run_transition_experiment
from repro.sgx.constants import PatchLevel


def test_transition_costs(benchmark):
    result = run_once(benchmark, run_transition_experiment, calls=500)
    print()
    print(result.render())
    by_level = {row.patch_level: row for row in result.rows}
    assert by_level[PatchLevel.BASELINE].round_trip_ns == 2_130
    assert by_level[PatchLevel.SPECTRE].round_trip_ns == 3_850
    assert by_level[PatchLevel.L1TF].round_trip_ns == 4_890
    # The paper's ratios: 1.74x and 2.24x over baseline.
    assert abs(by_level[PatchLevel.SPECTRE].vs_baseline - 1.81) < 0.15
    assert abs(by_level[PatchLevel.L1TF].vs_baseline - 2.30) < 0.15
    # Empty-ecall cost grows strictly with the mitigation level.
    ecall_costs = [by_level[level].empty_ecall_ns for level in PatchLevel]
    assert ecall_costs == sorted(ecall_costs)
