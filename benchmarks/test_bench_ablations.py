"""Ablations for the design choices the paper recommends.

* §3.4 — hybrid spin-then-sleep locks vs the SDK's sleep-only mutex: under
  short critical sections the hybrid variant should eliminate most
  sleep/wake ocalls and beat the SDK mutex end to end.
* §3.5 — EPC pressure: once the working set exceeds the (here: shrunken)
  EPC, paging events appear and throughput collapses — the reason the
  paper tells developers to keep enclaves small.
"""

from conftest import run_once

from repro.sdk.edger8r import build_enclave
from repro.sdk.sync import HybridMutex
from repro.sdk.urts import Urts
from repro.sgx.device import SgxDevice
from repro.sgx.enclave import EnclaveConfig
from repro.sgx.epc import Epc
from repro.sim.process import SimProcess

_EDL = """
enclave {
    trusted {
        public int ecall_locked(int which);
        public int ecall_touch(size_t offset);
        public int ecall_alloc(size_t nbytes);
    };
    untrusted { void ocall_noop(void); };
};
"""


class _LockApp:
    def __init__(self, seed: int = 0) -> None:
        self.process = SimProcess(seed=seed)
        self.device = SgxDevice(self.process.sim)
        self.urts = Urts(self.process, self.device)
        self.handle = build_enclave(
            self.urts,
            _EDL,
            {
                "ecall_locked": self._ecall_locked,
                "ecall_touch": lambda ctx, off: 0,
                "ecall_alloc": lambda ctx, n: 0,
            },
            {"ocall_noop": lambda uctx: None},
            config=EnclaveConfig(heap_bytes=256 * 1024, tcs_count=8),
        )
        runtime = self.urts.runtime(self.handle.enclave_id)
        self.sdk_mutex = runtime.mutex("plain")
        self.hybrid_mutex = HybridMutex(runtime, "hybrid", spin_iterations=96)

    def _ecall_locked(self, ctx, which: int):
        mutex = self.sdk_mutex if which == 0 else self.hybrid_mutex
        mutex.lock(ctx)
        ctx.compute(1_500)  # short critical section (<10 us, the SSC case)
        mutex.unlock(ctx)
        return 0


def _contended_run(which: int, threads: int = 4, iterations: int = 60):
    app = _LockApp(seed=which)
    sim = app.process.sim

    def worker():
        for _ in range(iterations):
            app.handle.ecall("ecall_locked", which)
            sim.compute(700)

    for i in range(threads):
        sim.spawn(worker, name=f"locker-{i}")
    start = sim.now_ns
    sim.run()
    elapsed = sim.now_ns - start
    mutex = app.sdk_mutex if which == 0 else app.hybrid_mutex
    return elapsed, dict(mutex.stats)


def test_hybrid_mutex_ablation(benchmark):
    def run_both():
        return _contended_run(0), _contended_run(1)

    (sdk_ns, sdk_stats), (hybrid_ns, hybrid_stats) = run_once(benchmark, run_both)
    print()
    print(f"SDK mutex:    {sdk_ns / 1e6:8.2f} ms, stats {sdk_stats}")
    print(f"hybrid mutex: {hybrid_ns / 1e6:8.2f} ms, stats {hybrid_stats}")
    # The hybrid lock avoids (nearly) all sleeping under short hold times...
    assert hybrid_stats["lock_slept"] < sdk_stats["lock_slept"] / 2
    assert hybrid_stats["lock_spun"] > 0
    # ...and wins end to end.
    assert hybrid_ns < sdk_ns


def test_epc_pressure_cliff(benchmark):
    """Throughput vs working set: fits-in-EPC vs thrashes-the-EPC."""

    def run_pressure():
        results = {}
        for label, heap_pages, epc_pages in (("fits", 96, 1024), ("thrashes", 640, 512)):
            process = SimProcess(seed=7)
            device = SgxDevice(process.sim, epc=Epc(capacity_pages=epc_pages))
            urts = Urts(process, device)
            touched = {"pages": 0}

            def ecall_touch(ctx, offset, _touched=touched, _heap=heap_pages):
                buf = getattr(ctx.runtime, "_bench_buf", None)
                if buf is None:
                    buf = ctx.malloc(_heap * 4096 - 64)
                    ctx.runtime._bench_buf = buf
                page = offset % _heap
                ctx.touch_heap_bytes(buf.allocation.offset + page * 4096, 32, write=True)
                ctx.compute(900)
                return 0

            handle = build_enclave(
                urts,
                _EDL,
                {
                    "ecall_locked": lambda ctx, w: 0,
                    "ecall_touch": ecall_touch,
                    "ecall_alloc": lambda ctx, n: 0,
                },
                {"ocall_noop": lambda uctx: None},
                config=EnclaveConfig(heap_bytes=(heap_pages + 2) * 4096, tcs_count=2),
            )
            start = process.sim.now_ns
            calls = 600
            for i in range(calls):
                handle.ecall("ecall_touch", i * 13)
            elapsed = process.sim.now_ns - start
            results[label] = {
                "ns_per_call": elapsed / calls,
                "page_in": device.driver.stats["page_in"],
                "page_out": device.driver.stats["page_out"],
            }
        return results

    results = run_once(benchmark, run_pressure)
    print()
    for label, data in results.items():
        print(
            f"{label:9}: {data['ns_per_call']:8.0f} ns/ecall, "
            f"page-in {data['page_in']}, page-out {data['page_out']}"
        )
    assert results["fits"]["page_in"] == 0
    assert results["thrashes"]["page_in"] > 100
    # Paging makes each call several times slower (the paper's "too costly").
    assert results["thrashes"]["ns_per_call"] > 2 * results["fits"]["ns_per_call"]


def test_self_paging_beats_sgx_paging(benchmark):
    """§3.5 option (iii): Eleos/STANlite-style application-level paging.

    Same access pattern over a data set larger than the (shrunken) EPC:
    the SGX-paging build faults on every wrap-around, while the self-paging
    build pays crypto+copy only — no transitions, no kernel — and wins.
    """
    from repro.sdk.selfpaging import SelfPagingStore

    DATA_PAGES = 560
    EPC_PAGES = 512
    CALLS = 500

    def run_variant(self_paging: bool):
        process = SimProcess(seed=11)
        device = SgxDevice(process.sim, epc=Epc(capacity_pages=EPC_PAGES))
        urts = Urts(process, device)
        state = {}

        def ecall_touch(ctx, index):
            if self_paging:
                store = state.get("store")
                if store is None:
                    store = SelfPagingStore(
                        ctx, key=b"k" * 32, block_bytes=4096, cache_blocks=64
                    )
                    state["store"] = store
                store.write(ctx, index % DATA_PAGES, index.to_bytes(8, "big"))
            else:
                buf = state.get("buf")
                if buf is None:
                    buf = ctx.malloc(DATA_PAGES * 4096 - 64)
                    state["buf"] = buf
                page = index % DATA_PAGES
                ctx.touch_heap_bytes(
                    buf.allocation.offset + page * 4096, 32, write=True
                )
            ctx.compute(700)
            return 0

        heap_pages = DATA_PAGES + 2 if not self_paging else 80
        handle = build_enclave(
            urts,
            _EDL,
            {
                "ecall_locked": lambda ctx, w: 0,
                "ecall_touch": ecall_touch,
                "ecall_alloc": lambda ctx, n: 0,
            },
            {"ocall_noop": lambda uctx: None},
            config=EnclaveConfig(heap_bytes=heap_pages * 4096, tcs_count=2),
        )
        start = process.sim.now_ns
        for i in range(CALLS):
            handle.ecall("ecall_touch", i * 7)
        elapsed = process.sim.now_ns - start
        return elapsed / CALLS, device.driver.stats["page_in"]

    def run_both():
        return run_variant(False), run_variant(True)

    (sgx_ns, sgx_faults), (eleos_ns, eleos_faults) = run_once(benchmark, run_both)
    print()
    print(f"SGX paging:  {sgx_ns:8.0f} ns/ecall, {sgx_faults} page faults")
    print(f"self-paging: {eleos_ns:8.0f} ns/ecall, {eleos_faults} page faults")
    assert sgx_faults > 100
    assert eleos_faults == 0  # the small enclave never oversubscribes
    assert eleos_ns < sgx_ns


def test_analyzer_weight_sensitivity(benchmark):
    """Ablation on the Equation 1 weights (α, β, γ defaults 0.35/0.50/0.65).

    The defaults "have been obtained through experimentation" (§4.3.2);
    this sweep shows the finding count on a mixed synthetic trace decreases
    monotonically as the thresholds tighten, and that the defaults sit
    between the permissive and strict extremes.
    """
    from repro.perf.analysis.detectors import AnalyzerWeights, detect_move_candidates
    from repro.perf.events import CallEvent, ECALL

    def make_trace():
        events = []
        event_id = 1
        cursor = 0
        # 12 call sites whose short-call fraction ramps from 0% to 110%.
        for site in range(12):
            short_fraction = site / 10
            for i in range(40):
                short = (i % 10) < short_fraction * 10
                duration = 2_600 if short else 60_000
                events.append(
                    CallEvent(
                        event_id=event_id, kind=ECALL, name=f"site{site}",
                        call_index=site, enclave_id=1, thread_id=1,
                        start_ns=cursor, end_ns=cursor + duration,
                    )
                )
                event_id += 1
                cursor += duration + 1_000
        return events

    def sweep():
        events = make_trace()
        counts = {}
        for scale, label in ((0.5, "permissive"), (1.0, "default"), (1.4, "strict")):
            weights = AnalyzerWeights(
                move_alpha=min(0.35 * scale, 1.0),
                move_beta=min(0.50 * scale, 1.0),
                move_gamma=min(0.65 * scale, 1.0),
            )
            counts[label] = len(detect_move_candidates(events, 2_130, weights))
        return counts

    counts = run_once(benchmark, sweep)
    print()
    print(f"Eq.1 findings by weight scale: {counts}")
    assert counts["permissive"] >= counts["default"] >= counts["strict"]
    assert counts["permissive"] > counts["strict"]
    assert counts["default"] > 0
