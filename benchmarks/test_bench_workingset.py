"""§5.2.3 / §5.2.4 — working set estimation.

Paper: Glamdring-partitioned LibreSSL uses 61 pages after start-up and 32
during the benchmark; SecureKeeper uses 322 pages (1.26 MiB) at start-up
and 94 (0.36 MiB) in steady state, so ≈249 enclaves would fit the EPC.
"""

from conftest import run_once

from repro.bench import run_working_set_experiments


def test_working_sets(benchmark):
    result = run_once(benchmark, run_working_set_experiments)
    print()
    print(result.render())

    assert 50 <= result.glamdring_startup_pages <= 75  # paper: 61
    assert 25 <= result.glamdring_steady_pages <= 40  # paper: 32
    assert result.glamdring_steady_pages < result.glamdring_startup_pages

    assert 280 <= result.securekeeper_startup_pages <= 370  # paper: 322
    assert 80 <= result.securekeeper_steady_pages <= 115  # paper: 94
    assert 200 <= result.securekeeper_epc_capacity <= 300  # paper: 249
