"""Scheduler run queue: O(log n) heap vs the seed's linear scan.

Every scheduling turn the seed kernel scanned all live threads for the
minimum ``(wake_time, seq)`` key and rebuilt the live-non-daemon list —
O(n) per turn, O(n²) per simulation.  The heap run queue replaces both
with an indexed min-heap (lazy invalidation) and a maintained liveness
counter, O(log n) per turn.

The workload is adversarial for the linear scan: many threads hammering
timed futex waits, so the run queue is large and churns every turn.  The
two kernels must produce the *identical* event log (the heap is a pure
data-structure swap), and the heap must win on wall-clock.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.sim.kernel import Simulation

THREADS = 160
ROUNDS = 12
# The asymptotic gap is large, but constants matter on small n; demand a
# real margin without flaking on CI noise.
MIN_SPEEDUP = 1.3


def _futex_hammer(run_queue: str) -> tuple[float, list]:
    """Run the hammer workload; return (wall seconds, event log)."""
    sim = Simulation(seed=7, run_queue=run_queue)
    log = []

    def worker(i: int) -> None:
        for round_no in range(ROUNDS):
            sim.compute(sim.rng.jitter_ns(f"hammer-{i}-{round_no}", 2_000))
            # Mostly-expiring timed waits keep the queue full of deadlines;
            # periodic wakes exercise invalidation of those entries.
            woke = sim.futex_wait(("gate", i % 8), timeout_ns=5_000)
            log.append((i, round_no, woke, sim.now_ns))
            if i % 8 == 0:
                sim.futex_wake(("gate", round_no % 8), count=4)

    for i in range(THREADS):
        sim.spawn(worker, i)
    begin = time.perf_counter()
    sim.run()
    return time.perf_counter() - begin, log


def test_bench_heap_beats_linear_scan(benchmark):
    linear_wall, linear_log = _futex_hammer("linear")

    heap_wall, heap_log = run_once(benchmark, _futex_hammer, "heap")

    # Pure data-structure swap: the schedule itself must not change.
    assert heap_log == linear_log
    assert len(heap_log) == THREADS * ROUNDS

    speedup = linear_wall / heap_wall
    print(
        f"\nscheduler run queue ({THREADS} threads x {ROUNDS} rounds): "
        f"linear {linear_wall:.3f}s, heap {heap_wall:.3f}s, speedup {speedup:.2f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"heap run queue only {speedup:.2f}x faster than linear scan "
        f"(need >= {MIN_SPEEDUP}x)"
    )
