#!/usr/bin/env python
"""Quickstart: build an enclave, trace it with sgx-perf, read the report.

This is the five-minute tour: a small SDK-style enclave with a deliberately
chatty interface, the preloaded event logger, and the analyser pointing out
exactly what a developer should fix.

Run:  python examples/quickstart.py
"""

from repro.perf import AexMode, Analyzer, EventLogger
from repro.sdk import Urts, build_enclave, parse_edl
from repro.sgx import EnclaveConfig, SgxDevice
from repro.sim import SimProcess

EDL = """
enclave {
    trusted {
        public int ecall_process_record([in, size=len] uint8_t* rec, size_t len);
        public int ecall_get_counter(void);
    };
    untrusted {
        void ocall_alloc_result(size_t len);
        void ocall_write_log([in, string] char* line);
    };
};
"""


def main() -> None:
    # 1. A machine with SGX and a process to run in.
    process = SimProcess(seed=42)
    device = SgxDevice(process.sim)
    urts = Urts(process, device)

    # 2. The application: one "real" ecall that commits the classic sins —
    #    an allocation ocall at its start (SNC) and a log ocall at its end —
    #    plus a tiny getter that gets hammered (SISC).
    counter = {"value": 0}

    def ecall_process_record(ctx, record, length):
        ctx.ocall("ocall_alloc_result", 256)  # reorderable: before the ecall!
        ctx.compute_jittered("work", 45_000)  # the actual work
        counter["value"] += 1
        ctx.ocall("ocall_write_log", "record done")  # reorderable: after!
        return length

    def ecall_get_counter(ctx):
        ctx.compute(250)  # far below the ~2.1 us transition cost
        return counter["value"]

    handle = build_enclave(
        urts,
        parse_edl(EDL),
        trusted_impls={
            "ecall_process_record": ecall_process_record,
            "ecall_get_counter": ecall_get_counter,
        },
        untrusted_impls={
            "ocall_alloc_result": lambda uctx, n: uctx.compute_jittered("alloc", 800),
            "ocall_write_log": lambda uctx, line: uctx.compute_jittered("log", 1_500),
        },
        config=EnclaveConfig(name="quickstart", heap_bytes=256 * 1024),
    )

    # 3. Preload the logger (the LD_PRELOAD moment) and run the workload.
    logger = EventLogger(process, urts, aex_mode=AexMode.COUNT)
    logger.install()
    for i in range(400):
        handle.ecall("ecall_process_record", bytes(64), 64)
        handle.ecall("ecall_get_counter")
        handle.ecall("ecall_get_counter")  # ...polling, like a bad UI loop
    logger.uninstall()
    trace = logger.finalize()

    # 4. Analyse.  The EDL lets the analyser audit the interface too.
    report = Analyzer(trace, definition=handle.definition).run()
    print(report.render_text())

    print()
    print("What to do about it, in priority order:")
    for finding in report.findings_by_priority():
        print(f"  [{finding.problem.name}] {finding.call}: "
              f"{finding.recommendations[0].value}")


if __name__ == "__main__":
    main()
