#!/usr/bin/env python
"""Reproduce the paper's Glamdring case study end to end (§5.2.3).

Workflow:
1. run the Glamdring-style partitioner over the signing application;
2. profile the partitioned build with sgx-perf;
3. read the analyser's finding (the paired ``bn_sub_part_words`` ecalls);
4. apply the paper's fix — move ``bn_mul_recursive`` inside — and measure
   the speed-up (paper: 2.16x).

Run:  python examples/partition_and_optimize.py
"""

from repro.perf import AexMode, Analyzer, EventLogger
from repro.sgx import SgxDevice
from repro.sim import SimProcess
from repro.workloads.glamdring import (
    GlamdringSigner,
    SignerBuild,
    make_certificate,
    make_partition,
    run_signing_benchmark,
)


def main() -> None:
    # -- 1. the automatic partition --------------------------------------
    partition = make_partition(SignerBuild.PARTITIONED)
    print("Glamdring slice (sensitive data: rsa_private_key):")
    print(f"  trusted:   {sorted(f for f in partition.trusted if not f.startswith('bn_api'))}")
    print(f"  ecalls:    {partition.ecalls}")
    print(f"  interface: {len(partition.definition.ecalls)} ecalls / "
          f"{len(partition.definition.ocalls) + 4} ocalls (incl. SDK sync)")
    print()

    # -- 2. profile it -----------------------------------------------------
    process = SimProcess(seed=0)
    device = SgxDevice(process.sim)
    signer = GlamdringSigner(process, device, SignerBuild.PARTITIONED)
    logger = EventLogger(process, signer.urts, aex_mode=AexMode.OFF)
    logger.install()
    for serial in range(2):
        signer.sign(make_certificate(serial))
    logger.uninstall()
    trace = logger.finalize()
    signer.close()

    # -- 3. what does sgx-perf say? ------------------------------------------
    report = Analyzer(trace, definition=partition.definition).run()
    subs = [c for c in trace.calls(kind="ecall") if c.name == "ecall_bn_sub_part_words"]
    total = len(trace.calls(kind="ecall"))
    print(f"profiled 2 signatures: {total} ecalls, of which "
          f"{len(subs)} ({len(subs) / total:.1%}) are ecall_bn_sub_part_words "
          f"(paper: 99.5%)")
    for finding in report.findings_by_priority():
        if finding.call == "ecall_bn_sub_part_words":
            print(f"finding: [{finding.problem.name}] {finding.message}")
            break
    print()

    # -- 4. apply the recommendation and measure ---------------------------------
    part = run_signing_benchmark(SignerBuild.PARTITIONED, signs=4)
    opt = run_signing_benchmark(SignerBuild.OPTIMIZED, signs=4)
    native = run_signing_benchmark(SignerBuild.NATIVE, signs=4)
    print(f"native:      {native.signs_per_second:6.1f} signs/s (paper: 145)")
    print(f"partitioned: {part.signs_per_second:6.1f} signs/s (paper: 33.88)")
    print(f"optimized:   {opt.signs_per_second:6.1f} signs/s")
    print(f"speed-up:    {opt.signs_per_second / part.signs_per_second:.2f}x "
          f"(paper: 2.16x)")


if __name__ == "__main__":
    main()
