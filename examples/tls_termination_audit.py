#!/usr/bin/env python
"""Audit the TaLoS enclave interface with sgx-perf (§5.2.1, Figure 5).

Serves HTTPS requests through the enclavised TLS library, then uses the
analyser to show why the OpenSSL API makes a poor enclave interface: the
ERR_* polling transitions, the chatty read/write ocalls, the user_check
pointers, and the call graph (written to ``talos_callgraph.dot`` — render
with Graphviz if available).

Run:  python examples/tls_termination_audit.py
"""

from repro.perf import AexMode, Analyzer, EventLogger
from repro.perf.analysis import stats as stats_mod
from repro.sgx import SgxDevice
from repro.sim import SimProcess
from repro.workloads.talos import TalosApp, run_talos_nginx


def main() -> None:
    process = SimProcess(seed=0)
    device = SgxDevice(process.sim)
    app = TalosApp(process, device)
    logger = EventLogger(process, app.urts, aex_mode=AexMode.COUNT)
    logger.install()
    result = run_talos_nginx(requests=120, process=process, device=device, app=app)
    logger.uninstall()
    trace = logger.finalize()

    ecalls = trace.calls(kind="ecall")
    ocalls = trace.calls(kind="ocall")
    print(f"served {result.requests} HTTPS requests "
          f"({result.client.responses_verified} verified end to end)")
    print(f"ecalls: {len(ecalls)} events, {len(ecalls) / result.requests:.1f} per "
          f"request (paper: 27.6) across {len({c.name for c in ecalls})} "
          f"distinct calls (paper: 61)")
    print(f"ocalls: {len(ocalls)} events, {len(ocalls) / result.requests:.1f} per "
          f"request (paper: 29.0)")
    short_e = stats_mod.fraction_shorter_than(stats_mod.durations_ns(ecalls), 10_000)
    short_o = stats_mod.fraction_shorter_than(stats_mod.durations_ns(ocalls), 10_000)
    print(f"short calls (<10us): {short_e:.1%} of ecalls (paper 60.78%), "
          f"{short_o:.1%} of ocalls (paper 73.69%)")
    print()

    analyzer = Analyzer(trace, definition=app.handle.definition)
    report = analyzer.run()
    print("top findings against the OpenSSL-as-enclave-interface design:")
    shown = 0
    for finding in report.findings_by_priority():
        print(f"  [{finding.problem.name:9}] {finding.kind} {finding.call}: "
              f"{finding.recommendations[0].value}")
        shown += 1
        if shown == 8:
            break
    print()

    dot = analyzer.call_graph_dot()
    with open("talos_callgraph.dot", "w") as f:
        f.write(dot)
    print(f"call graph written to talos_callgraph.dot "
          f"({dot.count('->')} edges; Figure 5 analogue)")


if __name__ == "__main__":
    main()
