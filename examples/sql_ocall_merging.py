#!/usr/bin/env python
"""Reproduce the paper's SQLite case study (§5.2.2, Figure 6 left).

Runs the minisql engine in three builds — native, naively enclavised
(separate lseek+write ocalls), and optimised (merged positioned-I/O
ocalls) — shows the analyser detecting the SDSC merge opportunity, and
prints the Figure 6 bars.

Run:  python examples/sql_ocall_merging.py
"""

from repro.perf import AexMode, Analyzer, EventLogger, Recommendation
from repro.sgx import SgxDevice
from repro.sim import SimProcess
from repro.workloads.minisql import (
    SQLITE_SYSCALL_COSTS,
    SqlBuild,
    run_sql_benchmark,
)
from repro.workloads.minisql.enclavised import EnclavedSqlApp
from repro.workloads.minisql.workload import CREATE_SQL, _insert_sql, commit_stream


def profile_naive_build(requests: int = 150):
    """Trace the naive build and let the analyser find the merge."""
    process = SimProcess(seed=0, syscall_costs=SQLITE_SYSCALL_COSTS)
    device = SgxDevice(process.sim)
    app = EnclavedSqlApp(process, device, SqlBuild.ENCLAVE)
    logger = EventLogger(process, app.urts, aex_mode=AexMode.OFF)
    logger.install()
    app.open("bench.db")
    app.execute(CREATE_SQL)
    for index, (sha, author, message) in enumerate(commit_stream(requests, 0)):
        app.execute(_insert_sql(sha, author, message, index))
    app.close()
    logger.uninstall()
    trace = logger.finalize()

    report = Analyzer(trace, definition=app.handle.definition).run()
    lseek = trace.calls(kind="ocall", name="ocall_lseek")
    write = trace.calls(kind="ocall", name="ocall_write")
    mean_us = lambda calls: sum(c.duration_ns for c in calls) / len(calls) / 1000  # noqa: E731
    print(f"traced {requests} inserts: {len(lseek)} lseek ocalls "
          f"(mean {mean_us(lseek):.1f} us; paper ~4), "
          f"{len(write)} write ocalls (mean {mean_us(write):.1f} us)")
    for finding in report.findings_by_priority():
        if Recommendation.MERGE in finding.recommendations and finding.call == "ocall_write":
            print(f"finding: [{finding.problem.name}] {finding.message}")
            break
    print()


def figure6_bars(requests: int = 300):
    rates = {}
    for build in (SqlBuild.NATIVE, SqlBuild.ENCLAVE, SqlBuild.MERGED):
        result = run_sql_benchmark(build, requests=requests)
        rates[build] = result.requests_per_second
    native = rates[SqlBuild.NATIVE]
    print(f"native:  {native:10,.0f} req/s = 1.00x (paper ~23,087)")
    print(f"enclave: {rates[SqlBuild.ENCLAVE]:10,.0f} req/s = "
          f"{rates[SqlBuild.ENCLAVE] / native:.2f}x (paper 0.57x)")
    gain = rates[SqlBuild.MERGED] / rates[SqlBuild.ENCLAVE] - 1
    print(f"merged:  {rates[SqlBuild.MERGED]:10,.0f} req/s = "
          f"{rates[SqlBuild.MERGED] / native:.2f}x, +{gain:.0%} "
          f"(paper 0.76x, +33%)")


if __name__ == "__main__":
    profile_naive_build()
    figure6_bars()
