#!/usr/bin/env python
"""Profile SecureKeeper under load: Figures 7 and 8 (§5.2.4).

Runs the encrypting ZooKeeper proxy with concurrently connecting clients,
then prints per-ecall statistics, the Figure 7 histogram, a terminal
rendition of the Figure 8 scatter plot, and the sync-ocall evidence of the
connect-phase contention.

Run:  python examples/profile_secure_kv.py
"""

import numpy as np

from repro.bench import run_figures_7_8
from repro.perf.workingset import WorkingSetEstimator
from repro.sgx import SgxDevice
from repro.sim import SimProcess
from repro.workloads.securekeeper import SecureKeeperProxy, run_securekeeper_load


def ascii_scatter(starts, durations, width=72, height=14) -> str:
    """A rough terminal scatter plot (Figure 8 flavour)."""
    if len(starts) == 0:
        return "(no data)"
    t0, t1 = int(starts.min()), int(starts.max())
    d0, d1 = int(durations.min()), int(durations.max())
    grid = [[" "] * width for _ in range(height)]
    for t, d in zip(starts, durations):
        x = int((t - t0) / max(t1 - t0, 1) * (width - 1))
        y = int((d - d0) / max(d1 - d0, 1) * (height - 1))
        grid[height - 1 - y][x] = "*"
    lines = [f"{d1 / 1000:7.1f} us |" + "".join(grid[0])]
    lines += ["           |" + "".join(row) for row in grid[1:-1]]
    lines.append(f"{d0 / 1000:7.1f} us |" + "".join(grid[-1]))
    lines.append("           +" + "-" * width)
    lines.append(f"            0 ... {(t1 - t0) / 1e6:.1f} ms since start")
    return "\n".join(lines)


def main() -> None:
    result = run_figures_7_8(clients=8, operations_per_client=50)
    print(result.render())
    print()
    print("Figure 8 - execution time over the course of the run:")
    print(ascii_scatter(result.scatter_starts_ns, result.scatter_durations_ns))
    print()

    # Working set, as §5.2.4 reports it.
    process = SimProcess(seed=1)
    device = SgxDevice(process.sim)
    proxy = SecureKeeperProxy(process, device, tcs_count=16)
    estimator = WorkingSetEstimator(process, proxy.handle.enclave)
    estimator.start()
    run_securekeeper_load(clients=8, operations_per_client=2,
                          process=process, device=device, proxy=proxy)
    startup = estimator.mark()
    run_securekeeper_load(clients=8, operations_per_client=10,
                          process=process, device=device, proxy=proxy)
    steady = estimator.stop()
    print(f"working set: start-up {startup.page_count} pages "
          f"({startup.bytes / 2**20:.2f} MiB; paper 322 / 1.26), steady "
          f"{steady.page_count} pages ({steady.bytes / 2**20:.2f} MiB; paper 94 / 0.36)")


if __name__ == "__main__":
    main()
